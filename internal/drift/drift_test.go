package drift

import (
	"math"
	"strings"
	"testing"
	"time"

	"kairos/internal/series"
)

var t0 = time.Date(2011, 6, 12, 0, 0, 0, 0, time.UTC)

// constWindow builds a one-workload sample whose CPU series is constant v.
func constWindow(name string, v float64) Sample {
	return Sample{Workload: name, CPU: series.Constant(t0, time.Minute, 12, v)}
}

func mustDetector(t *testing.T, cfg Config, baselines ...Sample) *Detector {
	t.Helper()
	d, err := NewDetector(cfg, baselines)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func observe(t *testing.T, d *Detector, samples ...Sample) *Trigger {
	t.Helper()
	trig, err := d.Observe(samples)
	if err != nil {
		t.Fatal(err)
	}
	return trig
}

func TestNewDetectorValidation(t *testing.T) {
	base := []Sample{constWindow("a", 1)}
	for _, tc := range []struct {
		name string
		cfg  Config
		bl   []Sample
	}{
		{"zero threshold", Config{}, base},
		{"negative threshold", Config{Threshold: -0.1}, base},
		{"NaN threshold", Config{Threshold: math.NaN()}, base},
		{"rearm above threshold", Config{Threshold: 0.05, Rearm: 0.06}, base},
		{"negative cooldown", Config{Threshold: 0.05, Cooldown: -1}, base},
		{"no baselines", Config{Threshold: 0.05}, nil},
		{"unnamed baseline", Config{Threshold: 0.05}, []Sample{{CPU: base[0].CPU}}},
		{"duplicate baseline", Config{Threshold: 0.05}, []Sample{constWindow("a", 1), constWindow("a", 2)}},
		{"empty baseline sample", Config{Threshold: 0.05}, []Sample{{Workload: "a"}}},
	} {
		if _, err := NewDetector(tc.cfg, tc.bl); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestObserveValidation(t *testing.T) {
	d := mustDetector(t, Config{Threshold: 0.05}, constWindow("a", 1))
	if _, err := d.Observe([]Sample{constWindow("ghost", 1)}); err == nil {
		t.Error("workload outside the baseline accepted")
	}
	if _, err := d.Observe([]Sample{constWindow("a", 1), constWindow("a", 1)}); err == nil {
		t.Error("duplicate workload in one window accepted")
	}
	short := Sample{Workload: "a", CPU: series.Constant(t0, time.Minute, 5, 1)}
	if _, err := d.Observe([]Sample{short}); err == nil {
		t.Error("window shape mismatch accepted")
	}
	badStep := Sample{Workload: "a", CPU: series.Constant(t0, time.Hour, 12, 1)}
	if _, err := d.Observe([]Sample{badStep}); err == nil {
		t.Error("window step mismatch accepted")
	}
}

// TestUtilizationThresholdBoundary pins the firing boundary: drift exactly
// at the threshold fires, drift one ulp-ish below does not.
func TestUtilizationThresholdBoundary(t *testing.T) {
	cases := []struct {
		name string
		obs  float64 // constant window value over baseline 1.0
		want bool
	}{
		{"well below", 1.01, false},
		{"just below", 1.0499, false},
		{"exactly at threshold", 1.05, true},
		{"above", 1.08, true},
		{"downward drift at threshold", 0.95, true},
		{"downward just inside", 0.9501, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d := mustDetector(t, Config{Threshold: 0.05}, constWindow("a", 1))
			trig := observe(t, d, constWindow("a", tc.obs))
			if got := trig != nil; got != tc.want {
				t.Fatalf("obs %v: trigger = %v, want %v", tc.obs, got, tc.want)
			}
			if trig == nil {
				return
			}
			if trig.Window != 0 || trig.Workloads != 1 || len(trig.Causes) == 0 {
				t.Errorf("trigger = %+v, want window 0, 1 workload", trig)
			}
			c := trig.Causes[0]
			if c.Workload != "a" || c.Resource != CPU || c.Kind != UtilizationDelta {
				t.Errorf("cause = %+v, want a/cpu utilization-delta", c)
			}
			if want := math.Abs(tc.obs - 1); math.Abs(c.Drift-want) > 1e-12 {
				t.Errorf("drift = %v, want %v", c.Drift, want)
			}
			if !strings.Contains(trig.String(), "a/cpu") {
				t.Errorf("trigger string %q should name the cause", trig)
			}
		})
	}
}

// TestForecastErrorSignal drives drift through the forecast-miss signal
// alone: the observed mean stays at the baseline (no utilization delta)
// while the shape departs from the rolling forecast.
func TestForecastErrorSignal(t *testing.T) {
	mkAlternating := func(amp float64) Sample {
		return Sample{Workload: "a", CPU: series.FromFunc(t0, time.Minute, 12, func(_ time.Time, i int) float64 {
			if i%2 == 0 {
				return 1 + amp
			}
			return 1 - amp
		})}
	}
	for _, tc := range []struct {
		name string
		amp  float64 // CV(RMSE) of the window vs a flat forecast = amp
		want bool
	}{
		{"below", 0.04, false},
		{"at threshold", 0.05, true},
		{"above", 0.10, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			d := mustDetector(t, Config{Threshold: 0.05}, constWindow("a", 1))
			// Window 0 builds forecast history; flat at the baseline, so
			// nothing fires.
			if trig := observe(t, d, constWindow("a", 1)); trig != nil {
				t.Fatalf("flat window fired: %v", trig)
			}
			trig := observe(t, d, mkAlternating(tc.amp))
			if got := trig != nil; got != tc.want {
				t.Fatalf("amp %v: trigger = %v, want %v", tc.amp, got, tc.want)
			}
			if trig != nil {
				c := trig.Causes[0]
				if c.Kind != ForecastError {
					t.Errorf("cause kind = %v, want forecast-error", c.Kind)
				}
				if math.Abs(c.Drift-tc.amp) > 1e-12 {
					t.Errorf("drift = %v, want %v", c.Drift, tc.amp)
				}
			}
		})
	}
}

// TestHysteresisRearm: after a trigger, drift hovering between the re-arm
// level and the threshold must not re-fire; only once the fleet calms to
// the re-arm level does the detector arm again.
func TestHysteresisRearm(t *testing.T) {
	// History 1 keeps the rolling forecast one window behind, so the
	// forecast-error signal of each step below is easy to compute by hand.
	d := mustDetector(t, Config{Threshold: 0.05, Rearm: 0.02, History: 1}, constWindow("a", 1))
	if trig := observe(t, d, constWindow("a", 1.06)); trig == nil {
		t.Fatal("initial above-threshold window should fire")
	}
	if d.Armed() {
		t.Fatal("detector should be disarmed after firing")
	}
	// Still above threshold: suppressed by hysteresis, not re-fired.
	if trig := observe(t, d, constWindow("a", 1.07)); trig != nil {
		t.Fatalf("hysteresis should suppress re-fire, got %v", trig)
	}
	// Between re-arm and threshold (util 3%, forecast |1.03-1.07|/1.03 ≈
	// 3.9%): still disarmed.
	if trig := observe(t, d, constWindow("a", 1.03)); trig != nil {
		t.Fatalf("drift above re-arm level should not re-arm, got %v", trig)
	}
	if d.Armed() {
		t.Fatal("detector re-armed above the re-arm level")
	}
	// At the re-arm level (util exactly 2%, forecast ≈1%): arms, but does
	// not fire this window.
	if trig := observe(t, d, constWindow("a", 1.02)); trig != nil {
		t.Fatalf("re-arming window should not fire, got %v", trig)
	}
	if !d.Armed() {
		t.Fatal("detector should re-arm at the re-arm level")
	}
	// Armed again: the next excursion fires.
	if trig := observe(t, d, constWindow("a", 1.06)); trig == nil {
		t.Fatal("excursion after re-arm should fire")
	} else if trig.Window != 4 {
		t.Errorf("trigger window = %d, want 4", trig.Window)
	}
}

// TestCooldownSuppression: windows inside the cool-down never fire, no
// matter how large the drift, and the cool-down also defers re-arming.
func TestCooldownSuppression(t *testing.T) {
	d := mustDetector(t, Config{Threshold: 0.05, Cooldown: 2, History: 1}, constWindow("a", 1))
	if trig := observe(t, d, constWindow("a", 1.10)); trig == nil {
		t.Fatal("first excursion should fire")
	}
	// Two cool-down windows: huge drift, no trigger.
	for i := 0; i < 2; i++ {
		if trig := observe(t, d, constWindow("a", 2.0)); trig != nil {
			t.Fatalf("cool-down window %d fired: %v", i, trig)
		}
	}
	// Cool-down over but still disarmed (drift never fell to re-arm).
	if trig := observe(t, d, constWindow("a", 2.0)); trig != nil {
		t.Fatalf("disarmed detector fired after cool-down: %v", trig)
	}
	// One calm window is not enough to re-arm: the rolling forecast still
	// remembers the 2.0 excursion, so the forecast miss stays huge.
	if trig := observe(t, d, constWindow("a", 1.01)); trig != nil {
		t.Fatalf("first calming window fired: %v", trig)
	}
	if d.Armed() {
		t.Fatal("detector re-armed while the forecast still misses")
	}
	// A second calm window converges the forecast; util 1% and forecast 0%
	// are both at or below the default re-arm level (threshold/2): arms.
	if trig := observe(t, d, constWindow("a", 1.01)); trig != nil {
		t.Fatalf("re-arming window fired: %v", trig)
	}
	if !d.Armed() {
		t.Fatal("detector should re-arm once calm")
	}
	trig := observe(t, d, constWindow("a", 1.10))
	if trig == nil {
		t.Fatal("post-cool-down excursion should fire")
	}
	if trig.Window != 6 {
		t.Errorf("trigger window = %d, want 6", trig.Window)
	}
}

// TestRearm: a caller whose trigger reaction failed can undo the disarm
// (and pending cool-down), so persistent drift re-fires immediately.
func TestRearm(t *testing.T) {
	d := mustDetector(t, Config{Threshold: 0.05, Cooldown: 3, History: 1}, constWindow("a", 1))
	if trig := observe(t, d, constWindow("a", 1.2)); trig == nil {
		t.Fatal("excursion should fire")
	}
	// Without Rearm the next window would be swallowed by the cool-down
	// and the drift level itself would block hysteresis re-arming forever.
	d.Rearm()
	if !d.Armed() {
		t.Fatal("Rearm should arm")
	}
	trig := observe(t, d, constWindow("a", 1.2))
	if trig == nil {
		t.Fatal("persistent drift after Rearm should re-fire")
	}
	if trig.Window != 1 {
		t.Errorf("trigger window = %d, want 1", trig.Window)
	}
}

// TestSetBaselineRebase: after a re-solve the caller rebases the detector
// onto the new plan's assumptions; the same observations stop drifting.
func TestSetBaselineRebase(t *testing.T) {
	d := mustDetector(t, Config{Threshold: 0.05, History: 1}, constWindow("a", 1))
	if trig := observe(t, d, constWindow("a", 1.2)); trig == nil {
		t.Fatal("20% drift should fire")
	}
	// Rebase onto the drifted level (as the watch loop does with the
	// forecast the re-solve consumed) and re-arm.
	if err := d.SetBaseline([]Sample{constWindow("a", 1.2)}); err != nil {
		t.Fatal(err)
	}
	if !d.Armed() {
		t.Fatal("SetBaseline should re-arm")
	}
	// Same level is no longer drift. (History carries over: the forecast
	// from the pre-rebase window predicts 1.2 exactly.)
	if trig := observe(t, d, constWindow("a", 1.2)); trig != nil {
		t.Fatalf("rebased detector fired on the new normal: %v", trig)
	}
	if trig := observe(t, d, constWindow("a", 1.2*1.06)); trig == nil {
		t.Fatal("drift against the new baseline should fire")
	}
	// Rebase must reject workloads vanishing silently only via validation
	// of observations: an old name is now unknown.
	if err := d.SetBaseline([]Sample{constWindow("b", 1)}); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Observe([]Sample{constWindow("a", 1)}); err == nil {
		t.Error("workload dropped from baseline still accepted")
	}
}

// TestMinWorkloads: a fleet-wide quorum below MinWorkloads must not fire.
func TestMinWorkloads(t *testing.T) {
	base := []Sample{constWindow("a", 1), constWindow("b", 1), constWindow("c", 1)}
	d := mustDetector(t, Config{Threshold: 0.05, MinWorkloads: 2}, base...)
	if trig := observe(t, d, constWindow("a", 1.2), constWindow("b", 1), constWindow("c", 1)); trig != nil {
		t.Fatalf("single drifted workload fired with MinWorkloads=2: %v", trig)
	}
	trig := observe(t, d, constWindow("a", 1.2), constWindow("b", 1.1), constWindow("c", 1))
	if trig == nil {
		t.Fatal("two drifted workloads should fire")
	}
	if trig.Workloads != 2 {
		t.Errorf("trigger workloads = %d, want 2", trig.Workloads)
	}
	// Causes sorted by drift, descending; both utilization causes present.
	if trig.Causes[0].Workload != "a" || trig.Causes[0].Drift < trig.Causes[len(trig.Causes)-1].Drift {
		t.Errorf("causes not sorted by drift: %v", trig.Causes)
	}
}

// TestZeroBaselineSemantics: dead series stay quiet, coming alive is full
// drift, and the NaN CV(RMSE) of a zero-mean window is never a signal.
func TestZeroBaselineSemantics(t *testing.T) {
	d := mustDetector(t, Config{Threshold: 0.05}, constWindow("idle", 0))
	if trig := observe(t, d, constWindow("idle", 0)); trig != nil {
		t.Fatalf("idle workload staying idle fired: %v", trig)
	}
	trig := observe(t, d, constWindow("idle", 0.5))
	if trig == nil {
		t.Fatal("idle workload coming alive should fire")
	}
	if c := trig.Causes[0]; c.Drift != 1 || c.Kind != UtilizationDelta {
		t.Errorf("cause = %+v, want full utilization drift", c)
	}
}

// TestMultiResourceCauses: drift on RAM and Disk is attributed to the
// right resource.
func TestMultiResourceCauses(t *testing.T) {
	mk := func(cpu, ram, disk float64) Sample {
		return Sample{
			Workload: "a",
			CPU:      series.Constant(t0, time.Minute, 6, cpu),
			RAM:      series.Constant(t0, time.Minute, 6, ram),
			Disk:     series.Constant(t0, time.Minute, 6, disk),
		}
	}
	d := mustDetector(t, Config{Threshold: 0.05}, mk(0.5, 8e9, 1000))
	trig := observe(t, d, mk(0.5, 9e9, 1000))
	if trig == nil {
		t.Fatal("RAM drift should fire")
	}
	if c := trig.Causes[0]; c.Resource != RAM {
		t.Errorf("cause resource = %v, want ram", c.Resource)
	}
	if len(trig.Causes) != 1 {
		t.Errorf("causes = %v, want only the RAM delta", trig.Causes)
	}
}

// TestPartialWindows: workloads missing from a window contribute no signal
// but tracked ones still fire.
func TestPartialWindows(t *testing.T) {
	d := mustDetector(t, Config{Threshold: 0.05}, constWindow("a", 1), constWindow("b", 1))
	trig := observe(t, d, constWindow("b", 1.3))
	if trig == nil {
		t.Fatal("drifted workload should fire even when others are absent")
	}
	if trig.Causes[0].Workload != "b" {
		t.Errorf("cause = %+v, want workload b", trig.Causes[0])
	}
}

func TestStringers(t *testing.T) {
	for _, s := range []string{CPU.String(), RAM.String(), Disk.String(),
		UtilizationDelta.String(), ForecastError.String(),
		Resource(99).String(), Kind(99).String()} {
		if s == "" {
			t.Error("empty stringer output")
		}
	}
}
