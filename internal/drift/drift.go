// Package drift detects when a fleet's observed workload behaviour has
// departed from the assumptions an incumbent consolidation plan was built
// on — the monitoring half of event-driven re-consolidation. The paper's
// premise (Section 7.5) is that consolidation is only as good as the
// monitoring loop behind it: profiles drift week over week, forecasts err,
// and the plan must follow. A Detector consumes one observation window per
// workload at a time (monitor.Profile series, rrd.Fetch output, or CSV
// traces), tracks two drift signals against the plan's baseline series —
//
//  1. utilization delta: the relative change of a window's mean resource
//     demand versus the baseline series the plan was solved against, and
//  2. forecast error: the CV(RMSE) of a rolling mean-of-recent-windows
//     forecast (predict.RollingForecast, the paper's average-of-weeks
//     predictor restated for streaming windows) scored against the window,
//
// and emits a typed Trigger naming which workloads drifted, by how much,
// and on which resource when a configurable threshold is crossed. The
// trigger state machine has hysteresis (after firing, the detector stays
// disarmed until drift falls back to the re-arm level) and a cool-down
// (a number of windows after a trigger during which nothing fires), so a
// noisy series sitting at the threshold cannot thrash re-solves.
package drift

import (
	"fmt"
	"math"
	"sort"
	"time"

	"kairos/internal/floats"
	"kairos/internal/predict"
	"kairos/internal/series"
)

// Resource identifies which monitored resource a drift signal concerns.
type Resource int

const (
	// CPU is the utilization series (fraction of the machine).
	CPU Resource = iota
	// RAM is the memory requirement series (bytes).
	RAM
	// Disk is the disk-model input series (row update rate, falling back
	// to measured write throughput for trace-only fleets).
	Disk
)

// String implements fmt.Stringer.
func (r Resource) String() string {
	switch r {
	case CPU:
		return "cpu"
	case RAM:
		return "ram"
	case Disk:
		return "disk"
	default:
		return fmt.Sprintf("resource(%d)", int(r))
	}
}

// resources is the fixed evaluation order.
var resources = [...]Resource{CPU, RAM, Disk}

// Kind distinguishes the two drift signals.
type Kind int

const (
	// UtilizationDelta is the relative change of a window's mean demand
	// versus the baseline series the incumbent plan assumed.
	UtilizationDelta Kind = iota
	// ForecastError is the CV(RMSE) of the rolling forecast for the window.
	ForecastError
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case UtilizationDelta:
		return "utilization-delta"
	case ForecastError:
		return "forecast-error"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Config tunes a Detector. The zero value is not valid; see NewDetector.
type Config struct {
	// Threshold is the relative drift at which a trigger fires (0.05 means
	// a 5% utilization delta or a 5% CV(RMSE) forecast miss). A signal
	// exactly at the threshold fires. Must be positive.
	Threshold float64
	// Rearm is the hysteresis level: after a trigger the detector stays
	// disarmed until the fleet-wide maximum drift falls to Rearm or below.
	// 0 defaults to Threshold/2; must not exceed Threshold.
	Rearm float64
	// Cooldown is the number of observation windows after a trigger during
	// which no new trigger fires, regardless of drift. 0 disables.
	Cooldown int
	// History is the number of recent windows averaged into the rolling
	// forecast (and retained for it). 0 defaults to 2.
	History int
	// MinWorkloads is how many distinct workloads must drift past the
	// threshold for a trigger to fire. 0 defaults to 1.
	MinWorkloads int
}

// withDefaults resolves the documented zero-value defaults.
func (c Config) withDefaults() Config {
	if c.Rearm == 0 {
		c.Rearm = c.Threshold / 2
	}
	if c.History == 0 {
		c.History = 2
	}
	if c.MinWorkloads == 0 {
		c.MinWorkloads = 1
	}
	return c
}

// Sample is one workload's observation over one evaluation window. Any
// series may be nil; only resources present in both the baseline and the
// observation are scored.
type Sample struct {
	// Workload names the workload; must be unique within a window.
	Workload string
	// CPU, RAM, Disk are the window's series for each resource.
	CPU, RAM, Disk *series.Series
}

func (s *Sample) get(r Resource) *series.Series {
	switch r {
	case CPU:
		return s.CPU
	case RAM:
		return s.RAM
	default:
		return s.Disk
	}
}

// Cause is one drifted (workload, resource, signal) triple of a Trigger.
type Cause struct {
	// Workload names the drifted workload.
	Workload string
	// Resource is the drifted resource.
	Resource Resource
	// Kind says which signal crossed the threshold.
	Kind Kind
	// Drift is the relative magnitude (fraction, not percent).
	Drift float64
}

// String implements fmt.Stringer.
func (c Cause) String() string {
	return fmt.Sprintf("%s/%s %s %.1f%%", c.Workload, c.Resource, c.Kind, c.Drift*100)
}

// Trigger reports that drift crossed the threshold on one observation
// window: which workloads drifted, by how much, on which resource.
type Trigger struct {
	// Window is the 0-based index of the observation window that fired.
	Window int
	// Causes lists every (workload, resource, signal) at or above the
	// threshold, largest drift first.
	Causes []Cause
	// MaxDrift is the largest cause's drift.
	MaxDrift float64
	// Workloads counts the distinct workloads among Causes.
	Workloads int
}

// String implements fmt.Stringer.
func (t *Trigger) String() string {
	top := ""
	if len(t.Causes) > 0 {
		top = ": " + t.Causes[0].String()
	}
	return fmt.Sprintf("drift trigger at window %d (%d workloads, max %.1f%%%s)",
		t.Window, t.Workloads, t.MaxDrift*100, top)
}

// baseline is the per-resource assumption the incumbent plan was built on.
type baseline struct {
	mean  [len(resources)]float64
	have  [len(resources)]bool
	shape [len(resources)]shape
}

// shape pins the series geometry every observation window must match.
type shape struct {
	n    int
	step time.Duration
}

// workloadState is the detector's per-workload tracking state.
type workloadState struct {
	base baseline
	// history holds up to cfg.History recent observation windows per
	// resource, oldest first, feeding the rolling forecast.
	history [len(resources)][]*series.Series
}

// Detector tracks drift for a set of workloads against the incumbent
// plan's baseline assumptions. It is not safe for concurrent use.
type Detector struct {
	cfg    Config
	state  map[string]*workloadState
	window int
	// armed is the hysteresis state: triggers fire only while armed.
	armed bool
	// cooldown counts remaining suppressed windows after a trigger.
	cooldown int
}

// NewDetector creates a detector with the given configuration and baseline
// samples — the per-workload series the incumbent plan was solved against.
func NewDetector(cfg Config, baselines []Sample) (*Detector, error) {
	if !(cfg.Threshold > 0) || math.IsInf(cfg.Threshold, 0) {
		return nil, fmt.Errorf("drift: threshold %v must be positive and finite", cfg.Threshold)
	}
	if cfg.Rearm < 0 || cfg.Rearm > cfg.Threshold {
		return nil, fmt.Errorf("drift: re-arm level %v outside [0, threshold %v]", cfg.Rearm, cfg.Threshold)
	}
	if cfg.Cooldown < 0 || cfg.History < 0 || cfg.MinWorkloads < 0 {
		return nil, fmt.Errorf("drift: negative cooldown/history/min-workloads")
	}
	d := &Detector{cfg: cfg.withDefaults(), state: map[string]*workloadState{}, armed: true}
	if err := d.SetBaseline(baselines); err != nil {
		return nil, err
	}
	return d, nil
}

// SetBaseline replaces the plan assumptions the utilization-delta signal
// compares against and re-arms the detector — call it after a re-solve so
// drift is measured against the new plan. Observation history (and any
// running cool-down) is preserved: the forecast tracks reality, not the
// plan, and a fresh baseline must not cut a cool-down short.
func (d *Detector) SetBaseline(baselines []Sample) error {
	if len(baselines) == 0 {
		return fmt.Errorf("drift: no baseline samples")
	}
	seen := make(map[string]bool, len(baselines))
	next := make(map[string]*workloadState, len(baselines))
	for i := range baselines {
		s := &baselines[i]
		if s.Workload == "" {
			return fmt.Errorf("drift: baseline sample %d has no workload name", i)
		}
		if seen[s.Workload] {
			return fmt.Errorf("drift: duplicate baseline workload %q", s.Workload)
		}
		seen[s.Workload] = true
		ws := d.state[s.Workload]
		if ws == nil {
			ws = &workloadState{}
		}
		var any bool
		for ri, r := range resources {
			sr := s.get(r)
			if sr == nil || sr.Len() == 0 {
				ws.base.have[ri] = false
				continue
			}
			ws.base.have[ri] = true
			ws.base.mean[ri] = sr.Mean()
			ws.base.shape[ri] = shape{n: sr.Len(), step: sr.Step}
			any = true
		}
		if !any {
			return fmt.Errorf("drift: baseline workload %q has no series", s.Workload)
		}
		next[s.Workload] = ws
	}
	d.state = next
	d.armed = true
	return nil
}

// Rearm forces the detector back to the armed state with no cool-down
// pending. A caller whose reaction to a Trigger failed (e.g. the triggered
// re-solve errored) uses it to undo the disarm that firing caused —
// otherwise persistent drift could never fire again, since the hysteresis
// re-arm level is exactly what the drift refuses to fall below.
func (d *Detector) Rearm() {
	d.armed = true
	d.cooldown = 0
}

// Window returns how many observation windows have been consumed.
func (d *Detector) Window() int { return d.window }

// Armed reports the hysteresis state: whether the next above-threshold
// window can fire (cool-down permitting).
func (d *Detector) Armed() bool { return d.armed }

// Cooldown returns how many post-trigger windows remain suppressed.
// Together with Window and Armed it is the detector's full counter state,
// checkpointed by the control plane's durability layer.
func (d *Detector) Cooldown() int { return d.cooldown }

// SeedHistory appends one already-consumed observation window to the
// rolling-forecast history without scoring it or advancing the window
// counter — the restore half of a checkpoint. It records exactly what
// Observe would have recorded for the same samples; restore the counters
// separately with Restore.
func (d *Detector) SeedHistory(samples []Sample) error {
	for i := range samples {
		s := &samples[i]
		ws := d.state[s.Workload]
		if ws == nil {
			return fmt.Errorf("drift: seeded workload %q is not in the baseline", s.Workload)
		}
		for ri, r := range resources {
			sr := s.get(r)
			if sr == nil || !ws.base.have[ri] {
				continue
			}
			h := append(ws.history[ri], sr)
			if len(h) > d.cfg.History {
				h = h[len(h)-d.cfg.History:]
			}
			ws.history[ri] = h
		}
	}
	return nil
}

// Restore sets the detector's counter state — window count, hysteresis
// arm, remaining cool-down — to checkpointed values, so a rebuilt
// detector resumes exactly where the crashed one stopped (a detector that
// was mid-cool-down must not fire on its first replayed window).
func (d *Detector) Restore(window int, armed bool, cooldown int) {
	d.window = window
	d.armed = armed
	d.cooldown = cooldown
}

// Observe consumes one observation window for the fleet and returns a
// non-nil Trigger when drift fires. Workloads absent from the window are
// skipped (no signal); workloads the baseline does not track are an error,
// as are windows whose series shape differs from the baseline's.
func (d *Detector) Observe(samples []Sample) (*Trigger, error) {
	causes, err := d.score(samples)
	if err != nil {
		return nil, err
	}
	window := d.window
	d.window++

	// Record history after scoring, so a window is never its own forecast.
	for i := range samples {
		s := &samples[i]
		ws := d.state[s.Workload]
		for ri, r := range resources {
			sr := s.get(r)
			if sr == nil || !ws.base.have[ri] {
				continue
			}
			h := append(ws.history[ri], sr)
			if len(h) > d.cfg.History {
				h = h[len(h)-d.cfg.History:]
			}
			ws.history[ri] = h
		}
	}

	maxDrift := 0.0
	fleet := map[string]bool{}
	var firing []Cause
	for _, c := range causes {
		if c.Drift > maxDrift {
			maxDrift = c.Drift
		}
		if c.Drift >= d.cfg.Threshold {
			firing = append(firing, c)
			fleet[c.Workload] = true
		}
	}

	// Cool-down suppresses everything, including re-arming: the windows
	// right after a re-solve are the plan settling, not new drift.
	if d.cooldown > 0 {
		d.cooldown--
		return nil, nil
	}
	if !d.armed {
		// Hysteresis: re-arm only once the fleet has calmed to Rearm.
		if maxDrift <= d.cfg.Rearm {
			d.armed = true
		}
		return nil, nil
	}
	if len(fleet) < d.cfg.MinWorkloads {
		return nil, nil
	}
	sort.Slice(firing, func(i, j int) bool {
		a, b := firing[i], firing[j]
		if !floats.Same(a.Drift, b.Drift) {
			return a.Drift > b.Drift
		}
		if a.Workload != b.Workload {
			return a.Workload < b.Workload
		}
		if a.Resource != b.Resource {
			return a.Resource < b.Resource
		}
		return a.Kind < b.Kind
	})
	d.armed = false
	d.cooldown = d.cfg.Cooldown
	return &Trigger{
		Window:    window,
		Causes:    firing,
		MaxDrift:  firing[0].Drift,
		Workloads: len(fleet),
	}, nil
}

// score computes every (workload, resource, signal) drift for one window.
func (d *Detector) score(samples []Sample) ([]Cause, error) {
	var causes []Cause
	seen := make(map[string]bool, len(samples))
	for i := range samples {
		s := &samples[i]
		ws := d.state[s.Workload]
		if ws == nil {
			return nil, fmt.Errorf("drift: workload %q is not in the baseline", s.Workload)
		}
		if seen[s.Workload] {
			return nil, fmt.Errorf("drift: duplicate workload %q in window", s.Workload)
		}
		seen[s.Workload] = true
		for ri, r := range resources {
			sr := s.get(r)
			if sr == nil {
				continue
			}
			if !ws.base.have[ri] {
				continue // resource untracked by the plan
			}
			if sh := ws.base.shape[ri]; sr.Len() != sh.n || sr.Step != sh.step {
				return nil, fmt.Errorf("drift: workload %q %v window shape (%d×%v) differs from baseline (%d×%v)",
					s.Workload, r, sr.Len(), sr.Step, sh.n, sh.step)
			}
			if du, ok := utilizationDelta(ws.base.mean[ri], sr.Mean()); ok {
				causes = append(causes, Cause{s.Workload, r, UtilizationDelta, du})
			}
			if len(ws.history[ri]) > 0 {
				fc, err := predict.RollingForecast(ws.history[ri], sr)
				if err != nil {
					return nil, fmt.Errorf("drift: workload %q %v forecast: %w", s.Workload, r, err)
				}
				// A non-positive window mean makes CV(RMSE) undefined
				// (NaN): no forecast signal rather than a fake one.
				if cv := fc.CVRMSEPct / 100; !math.IsNaN(cv) {
					causes = append(causes, Cause{s.Workload, r, ForecastError, cv})
				}
			}
		}
	}
	return causes, nil
}

// utilizationDelta scores the relative mean shift of a window against the
// baseline. A non-positive baseline mean has no meaningful relative scale:
// a window that is also non-positive is no drift, and one that came alive
// counts as fully drifted (1.0).
func utilizationDelta(base, obs float64) (float64, bool) {
	if math.IsNaN(base) || math.IsNaN(obs) {
		return 0, false
	}
	if base <= 0 {
		if obs <= 0 {
			return 0, true
		}
		return 1, true
	}
	return math.Abs(obs-base) / base, true
}
