package drift

import "testing"

// TestCheckpointRestoreEquivalence rebuilds a detector from checkpointed
// state (baseline + seeded history + counters) and verifies it behaves
// identically to the live one on the next windows — the invariant the
// control plane's crash recovery rests on.
func TestCheckpointRestoreEquivalence(t *testing.T) {
	cfg := Config{Threshold: 0.05, Cooldown: 2, History: 2}
	base := []Sample{constWindow("a", 1), constWindow("b", 1)}

	live := mustDetector(t, cfg, base...)
	// Quiet, quiet, then a trigger: leaves the live detector disarmed with
	// a running cool-down — the most state-laden point to checkpoint.
	windows := [][]Sample{
		{constWindow("a", 1.01), constWindow("b", 1)},
		{constWindow("a", 0.99), constWindow("b", 1)},
		{constWindow("a", 1.30), constWindow("b", 1)},
	}
	var history [][]Sample
	for i, w := range windows {
		trig := observe(t, live, w...)
		if (trig != nil) != (i == 2) {
			t.Fatalf("window %d: trigger = %v", i, trig)
		}
		history = append(history, w)
		if len(history) > cfg.History {
			history = history[len(history)-cfg.History:]
		}
	}
	if live.Armed() || live.Cooldown() != 2 || live.Window() != 3 {
		t.Fatalf("live state armed=%v cooldown=%d window=%d, want disarmed/2/3",
			live.Armed(), live.Cooldown(), live.Window())
	}

	restored := mustDetector(t, cfg, base...)
	for _, w := range history {
		if err := restored.SeedHistory(w); err != nil {
			t.Fatalf("SeedHistory: %v", err)
		}
	}
	restored.Restore(live.Window(), live.Armed(), live.Cooldown())

	// Both detectors must now agree on every subsequent window: the
	// cool-down suppresses the next two, and the third (drift held at 30%)
	// still cannot fire because the hysteresis never saw drift fall to the
	// re-arm level.
	for i := 0; i < 4; i++ {
		w := []Sample{constWindow("a", 1.30), constWindow("b", 1)}
		lt := observe(t, live, w...)
		rt := observe(t, restored, w...)
		if (lt == nil) != (rt == nil) {
			t.Fatalf("window %d: live trigger %v, restored trigger %v", i, lt, rt)
		}
		if live.Armed() != restored.Armed() || live.Cooldown() != restored.Cooldown() || live.Window() != restored.Window() {
			t.Fatalf("window %d: state diverged (live %v/%d/%d, restored %v/%d/%d)", i,
				live.Armed(), live.Cooldown(), live.Window(),
				restored.Armed(), restored.Cooldown(), restored.Window())
		}
	}

	// After a rebase (what a replayed advance does), the forecast history
	// must have survived the checkpoint: a drifted window scores a
	// forecast-error signal only if history is present.
	if err := restored.SeedHistory([]Sample{constWindow("ghost", 1)}); err == nil {
		t.Error("SeedHistory accepted a workload outside the baseline")
	}
}
