package predict

import (
	"math"
	"testing"
	"time"

	"kairos/internal/fleet"
	"kairos/internal/floats"
	"kairos/internal/series"
)

func TestValidation(t *testing.T) {
	s := series.Constant(time.Unix(0, 0), time.Minute, 30, 1)
	if _, err := AverageOfWeeks(nil, 10, 2, 2); err == nil {
		t.Error("nil trace accepted")
	}
	if _, err := AverageOfWeeks(s, 0, 2, 2); err == nil {
		t.Error("zero week length accepted")
	}
	if _, err := AverageOfWeeks(s, 10, 0, 2); err == nil {
		t.Error("zero history accepted")
	}
	if _, err := AverageOfWeeks(s, 10, 2, 1); err == nil {
		t.Error("target inside history accepted")
	}
	if _, err := AverageOfWeeks(s, 10, 2, 5); err == nil {
		t.Error("target beyond trace accepted")
	}
}

func TestPerfectlyPeriodicTraceHasZeroError(t *testing.T) {
	// A trace that repeats exactly week over week is perfectly predicted.
	week := 20
	trace := series.FromFunc(time.Unix(0, 0), time.Minute, 3*week, func(_ time.Time, i int) float64 {
		return 5 + math.Sin(2*math.Pi*float64(i%week)/float64(week))
	})
	f, err := AverageOfWeeks(trace, week, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if f.RMSE > 1e-9 {
		t.Errorf("RMSE = %v, want 0 for periodic trace", f.RMSE)
	}
	if f.Prediction.Len() != week || f.Actual.Len() != week {
		t.Error("forecast slices have wrong length")
	}
}

func TestAveragingSmoothsNoise(t *testing.T) {
	// Averaging two noisy history weeks predicts better than copying the
	// immediately preceding week (variance halves).
	week := 500
	noise := func(i, w int) float64 {
		// Deterministic pseudo-noise, different per week.
		x := float64((i*2654435761 + w*40503) % 1000)
		return (x/1000 - 0.5) * 2
	}
	mk := func(w int) []float64 {
		out := make([]float64, week)
		for i := range out {
			out[i] = 10 + 3*math.Sin(2*math.Pi*float64(i)/float64(week)) + noise(i, w)
		}
		return out
	}
	var all []float64
	for w := 0; w < 3; w++ {
		all = append(all, mk(w)...)
	}
	trace := series.New(time.Unix(0, 0), time.Minute, all)

	avg2, err := AverageOfWeeks(trace, week, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	copy1, err := AverageOfWeeks(trace, week, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if avg2.RMSE >= copy1.RMSE {
		t.Errorf("averaging should beat last-week copy: avg=%v copy=%v", avg2.RMSE, copy1.RMSE)
	}
}

// Regression: a non-positive actual mean used to report CVRMSEPct = 0 — a
// "perfect" forecast for an idle (or sign-cancelling) window — which would
// let dead series slip under any drift-detection error threshold. The ratio
// is undefined there, so it must be NaN.
func TestNonPositiveMeanGivesNaNError(t *testing.T) {
	week := 10
	cases := []struct {
		name string
		mk   func(i, w int) float64
	}{
		{"all-zero", func(i, w int) float64 { return 0 }},
		{"negative-mean", func(i, w int) float64 { return -3 }},
		{"sign-cancelling", func(i, w int) float64 {
			if i%2 == 0 {
				return 1
			}
			return -1
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			vals := make([]float64, 3*week)
			for i := range vals {
				vals[i] = tc.mk(i%week, i/week)
			}
			// Make history weeks differ from the target so RMSE > 0 and a
			// bogus 0% error cannot hide behind a genuinely perfect forecast.
			for i := 0; i < week; i++ {
				vals[i] += 5
			}
			trace := series.New(time.Unix(0, 0), time.Minute, vals)
			fc, err := AverageOfWeeks(trace, week, 2, 2)
			if err != nil {
				t.Fatal(err)
			}
			if fc.RMSE <= 0 {
				t.Fatalf("test setup broken: RMSE = %v, want > 0", fc.RMSE)
			}
			if !math.IsNaN(fc.CVRMSEPct) {
				t.Errorf("CVRMSEPct = %v for actual mean %v, want NaN",
					fc.CVRMSEPct, fc.Actual.Mean())
			}
		})
	}
}

func TestMeanOfWindows(t *testing.T) {
	start := time.Unix(0, 0)
	a := series.New(start, time.Minute, []float64{1, 2, 3})
	b := series.New(start, time.Minute, []float64{3, 4, 5})
	m, err := MeanOfWindows([]*series.Series{a, b})
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []float64{2, 3, 4} {
		if !floats.Same(m.Values[i], want) {
			t.Errorf("mean[%d] = %v, want %v", i, m.Values[i], want)
		}
	}
	if _, err := MeanOfWindows(nil); err == nil {
		t.Error("empty window list accepted")
	}
	if _, err := MeanOfWindows([]*series.Series{a, nil}); err == nil {
		t.Error("nil window accepted")
	}
	short := series.New(start, time.Minute, []float64{1})
	if _, err := MeanOfWindows([]*series.Series{a, short}); err == nil {
		t.Error("shape mismatch accepted")
	}
}

func TestRollingForecast(t *testing.T) {
	start := time.Unix(0, 0)
	h1 := series.New(start, time.Minute, []float64{1, 1, 1, 1})
	h2 := series.New(start, time.Minute, []float64{3, 3, 3, 3})
	actual := series.New(start, time.Minute, []float64{2, 2, 2, 2})
	fc, err := RollingForecast([]*series.Series{h1, h2}, actual)
	if err != nil {
		t.Fatal(err)
	}
	if fc.RMSE != 0 || fc.CVRMSEPct != 0 {
		t.Errorf("perfect forecast scored RMSE=%v CV=%v, want 0, 0", fc.RMSE, fc.CVRMSEPct)
	}
	// 10% uniform drift in the actual scores CV(RMSE) ≈ |Δ|/mean.
	drifted := actual.Scale(1.1)
	fc, err = RollingForecast([]*series.Series{h1, h2}, drifted)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fc.CVRMSEPct-100*0.2/2.2) > 1e-9 {
		t.Errorf("CVRMSEPct = %v, want %v", fc.CVRMSEPct, 100*0.2/2.2)
	}
	if _, err := RollingForecast(nil, actual); err == nil {
		t.Error("empty history accepted")
	}
	if _, err := RollingForecast([]*series.Series{h1}, nil); err == nil {
		t.Error("nil actual accepted")
	}
	short := series.New(start, time.Minute, []float64{1})
	if _, err := RollingForecast([]*series.Series{h1}, short); err == nil {
		t.Error("shape mismatch accepted")
	}
}

func TestFleetPredictability(t *testing.T) {
	// The Figure 13 result: for Wikipedia and Second Life, the average of
	// weeks 1–2 predicts week 3 within ≈10% of the mean load.
	for _, d := range []fleet.Dataset{fleet.Wikipedia, fleet.SecondLife} {
		f := fleet.GenerateWeeks(d, 3)
		agg := f.AggregateCPU()
		fc, err := AverageOfWeeks(agg, 7*fleet.SamplesPerDay, 2, 2)
		if err != nil {
			t.Fatal(err)
		}
		if fc.CVRMSEPct <= 0 || fc.CVRMSEPct > 15 {
			t.Errorf("%v: relative error %.1f%%, want ≈7-8%% (≤15%%)", d, fc.CVRMSEPct)
		}
	}
}
