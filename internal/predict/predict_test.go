package predict

import (
	"math"
	"testing"
	"time"

	"kairos/internal/fleet"
	"kairos/internal/series"
)

func TestValidation(t *testing.T) {
	s := series.Constant(time.Unix(0, 0), time.Minute, 30, 1)
	if _, err := AverageOfWeeks(nil, 10, 2, 2); err == nil {
		t.Error("nil trace accepted")
	}
	if _, err := AverageOfWeeks(s, 0, 2, 2); err == nil {
		t.Error("zero week length accepted")
	}
	if _, err := AverageOfWeeks(s, 10, 0, 2); err == nil {
		t.Error("zero history accepted")
	}
	if _, err := AverageOfWeeks(s, 10, 2, 1); err == nil {
		t.Error("target inside history accepted")
	}
	if _, err := AverageOfWeeks(s, 10, 2, 5); err == nil {
		t.Error("target beyond trace accepted")
	}
}

func TestPerfectlyPeriodicTraceHasZeroError(t *testing.T) {
	// A trace that repeats exactly week over week is perfectly predicted.
	week := 20
	trace := series.FromFunc(time.Unix(0, 0), time.Minute, 3*week, func(_ time.Time, i int) float64 {
		return 5 + math.Sin(2*math.Pi*float64(i%week)/float64(week))
	})
	f, err := AverageOfWeeks(trace, week, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if f.RMSE > 1e-9 {
		t.Errorf("RMSE = %v, want 0 for periodic trace", f.RMSE)
	}
	if f.Prediction.Len() != week || f.Actual.Len() != week {
		t.Error("forecast slices have wrong length")
	}
}

func TestAveragingSmoothsNoise(t *testing.T) {
	// Averaging two noisy history weeks predicts better than copying the
	// immediately preceding week (variance halves).
	week := 500
	noise := func(i, w int) float64 {
		// Deterministic pseudo-noise, different per week.
		x := float64((i*2654435761 + w*40503) % 1000)
		return (x/1000 - 0.5) * 2
	}
	mk := func(w int) []float64 {
		out := make([]float64, week)
		for i := range out {
			out[i] = 10 + 3*math.Sin(2*math.Pi*float64(i)/float64(week)) + noise(i, w)
		}
		return out
	}
	var all []float64
	for w := 0; w < 3; w++ {
		all = append(all, mk(w)...)
	}
	trace := series.New(time.Unix(0, 0), time.Minute, all)

	avg2, err := AverageOfWeeks(trace, week, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	copy1, err := AverageOfWeeks(trace, week, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if avg2.RMSE >= copy1.RMSE {
		t.Errorf("averaging should beat last-week copy: avg=%v copy=%v", avg2.RMSE, copy1.RMSE)
	}
}

func TestFleetPredictability(t *testing.T) {
	// The Figure 13 result: for Wikipedia and Second Life, the average of
	// weeks 1–2 predicts week 3 within ≈10% of the mean load.
	for _, d := range []fleet.Dataset{fleet.Wikipedia, fleet.SecondLife} {
		f := fleet.GenerateWeeks(d, 3)
		agg := f.AggregateCPU()
		fc, err := AverageOfWeeks(agg, 7*fleet.SamplesPerDay, 2, 2)
		if err != nil {
			t.Fatal(err)
		}
		if fc.MeanAbsPctError <= 0 || fc.MeanAbsPctError > 15 {
			t.Errorf("%v: relative error %.1f%%, want ≈7-8%% (≤15%%)", d, fc.MeanAbsPctError)
		}
	}
}
