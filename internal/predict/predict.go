// Package predict validates the assumption behind stable consolidation
// plans: that past workload behaviour predicts future behaviour (paper
// Section 7.5, Figure 13). The paper averages the first two weeks of CPU
// load to predict the third and reports an RMSE around 25 (≈7–8% of load).
package predict

import (
	"fmt"

	"kairos/internal/series"
	"kairos/internal/stats"
)

// WeeklyForecast is the outcome of a past-predicts-future experiment.
type WeeklyForecast struct {
	// Prediction is the forecast series for the target week.
	Prediction *series.Series
	// Actual is the observed target week.
	Actual *series.Series
	// RMSE is the root-mean-squared error between them.
	RMSE float64
	// MeanAbsPctError is the RMSE relative to the actual mean, in percent
	// (the paper's "7-8% off from the actual load").
	MeanAbsPctError float64
}

// AverageOfWeeks predicts week `target` (0-based) of a trace as the
// element-wise average of the preceding `history` weeks, and scores the
// prediction against the actual week. samplesPerWeek is the number of
// samples in one week.
func AverageOfWeeks(trace *series.Series, samplesPerWeek, history, target int) (WeeklyForecast, error) {
	if trace == nil || samplesPerWeek <= 0 {
		return WeeklyForecast{}, fmt.Errorf("predict: nil trace or bad week length %d", samplesPerWeek)
	}
	if history < 1 {
		return WeeklyForecast{}, fmt.Errorf("predict: need at least one history week, got %d", history)
	}
	if target < history {
		return WeeklyForecast{}, fmt.Errorf("predict: target week %d has only %d prior weeks, need %d",
			target, target, history)
	}
	if (target+1)*samplesPerWeek > trace.Len() {
		return WeeklyForecast{}, fmt.Errorf("predict: trace has %d samples, target week %d needs %d",
			trace.Len(), target, (target+1)*samplesPerWeek)
	}

	weeks := make([]*series.Series, 0, history)
	for w := target - history; w < target; w++ {
		s, err := trace.Slice(w*samplesPerWeek, (w+1)*samplesPerWeek)
		if err != nil {
			return WeeklyForecast{}, err
		}
		weeks = append(weeks, s)
	}
	sum, err := series.Sum(weeks)
	if err != nil {
		return WeeklyForecast{}, err
	}
	pred := sum.Scale(1 / float64(history))

	actual, err := trace.Slice(target*samplesPerWeek, (target+1)*samplesPerWeek)
	if err != nil {
		return WeeklyForecast{}, err
	}
	rmse, err := stats.RMSE(pred.Values, actual.Values)
	if err != nil {
		return WeeklyForecast{}, err
	}
	out := WeeklyForecast{Prediction: pred, Actual: actual, RMSE: rmse}
	if mean := actual.Mean(); mean > 0 {
		out.MeanAbsPctError = rmse / mean * 100
	}
	return out, nil
}
