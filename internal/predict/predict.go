// Package predict validates the assumption behind stable consolidation
// plans: that past workload behaviour predicts future behaviour (paper
// Section 7.5, Figure 13). The paper averages the first two weeks of CPU
// load to predict the third and reports an RMSE around 25 (≈7–8% of load).
//
// The same machinery powers event-driven re-consolidation: drift.Detector
// scores a rolling mean-of-recent-windows forecast against each new
// observation window (RollingForecast), and the watch loop feeds the
// forecast series — not the stale profile — into the warm re-solve.
package predict

import (
	"fmt"
	"math"

	"kairos/internal/series"
	"kairos/internal/stats"
)

// WeeklyForecast is the outcome of a past-predicts-future experiment.
type WeeklyForecast struct {
	// Prediction is the forecast series for the target window.
	Prediction *series.Series
	// Actual is the observed target window.
	Actual *series.Series
	// RMSE is the root-mean-squared error between them.
	RMSE float64
	// CVRMSEPct is the coefficient of variation of the RMSE — RMSE divided
	// by the actual window's mean, in percent (the paper's "7–8% off from
	// the actual load"). It is NaN when the actual mean is not positive:
	// the ratio is undefined there, and reporting 0 (a "perfect" forecast,
	// as earlier versions did) would let an idle or corrupt window slip
	// under any drift-detection error threshold.
	CVRMSEPct float64
}

// scoreForecast fills in the error metrics of a forecast against its
// observed window.
func scoreForecast(pred, actual *series.Series) (WeeklyForecast, error) {
	rmse, err := stats.RMSE(pred.Values, actual.Values)
	if err != nil {
		return WeeklyForecast{}, err
	}
	out := WeeklyForecast{Prediction: pred, Actual: actual, RMSE: rmse, CVRMSEPct: math.NaN()}
	if mean := actual.Mean(); mean > 0 {
		out.CVRMSEPct = rmse / mean * 100
	}
	return out, nil
}

// MeanOfWindows returns the element-wise mean of the given same-shape
// windows — the rolling forecast for the next window. The first window
// defines start and step.
func MeanOfWindows(windows []*series.Series) (*series.Series, error) {
	if len(windows) == 0 {
		return nil, fmt.Errorf("predict: no windows to average")
	}
	for i, w := range windows {
		if w == nil {
			return nil, fmt.Errorf("predict: window %d is nil", i)
		}
	}
	sum, err := series.Sum(windows)
	if err != nil {
		return nil, err
	}
	return sum.Scale(1 / float64(len(windows))), nil
}

// RollingForecast predicts an observation window as the element-wise mean
// of the preceding history windows and scores the prediction against the
// actual window — the AverageOfWeeks experiment restated for streaming
// drift detection, where windows arrive one at a time instead of being
// sliced out of one long trace.
func RollingForecast(history []*series.Series, actual *series.Series) (WeeklyForecast, error) {
	if actual == nil {
		return WeeklyForecast{}, fmt.Errorf("predict: nil actual window")
	}
	pred, err := MeanOfWindows(history)
	if err != nil {
		return WeeklyForecast{}, err
	}
	if pred.Len() != actual.Len() || pred.Step != actual.Step {
		return WeeklyForecast{}, fmt.Errorf("predict: forecast shape (%d×%v) does not match actual (%d×%v)",
			pred.Len(), pred.Step, actual.Len(), actual.Step)
	}
	return scoreForecast(pred, actual)
}

// AverageOfWeeks predicts week `target` (0-based) of a trace as the
// element-wise average of the preceding `history` weeks, and scores the
// prediction against the actual week. samplesPerWeek is the number of
// samples in one week.
func AverageOfWeeks(trace *series.Series, samplesPerWeek, history, target int) (WeeklyForecast, error) {
	if trace == nil || samplesPerWeek <= 0 {
		return WeeklyForecast{}, fmt.Errorf("predict: nil trace or bad week length %d", samplesPerWeek)
	}
	if history < 1 {
		return WeeklyForecast{}, fmt.Errorf("predict: need at least one history week, got %d", history)
	}
	if target < history {
		return WeeklyForecast{}, fmt.Errorf("predict: target week %d has only %d prior weeks, need %d",
			target, target, history)
	}
	if (target+1)*samplesPerWeek > trace.Len() {
		return WeeklyForecast{}, fmt.Errorf("predict: trace has %d samples, target week %d needs %d",
			trace.Len(), target, (target+1)*samplesPerWeek)
	}

	weeks := make([]*series.Series, 0, history)
	for w := target - history; w < target; w++ {
		s, err := trace.Slice(w*samplesPerWeek, (w+1)*samplesPerWeek)
		if err != nil {
			return WeeklyForecast{}, err
		}
		weeks = append(weeks, s)
	}
	pred, err := MeanOfWindows(weeks)
	if err != nil {
		return WeeklyForecast{}, err
	}
	actual, err := trace.Slice(target*samplesPerWeek, (target+1)*samplesPerWeek)
	if err != nil {
		return WeeklyForecast{}, err
	}
	return scoreForecast(pred, actual)
}
