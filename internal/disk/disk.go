// Package disk simulates a rotational disk subsystem at tick granularity.
//
// The Kairos paper (Section 4.1) builds an empirical model of disk behaviour
// because "complex interactions between the DBMS, OS, and disk controller
// make it hard to predict how sequential or random the combination of a set
// of workloads will be". This package is the hardware those interactions run
// against: a seek + rotation + transfer service-time model with three request
// classes that capture how a DBMS actually uses a disk:
//
//   - synchronous random page reads (buffer-pool misses) — highest priority;
//   - sequential log writes with per-flush overhead, where interleaving
//     flushes from different log streams costs extra seeks (the mechanism
//     behind the paper's one-DBMS-instance-beats-many argument);
//   - background write-back of dirty pages submitted as sorted batches, so
//     the elevator effect makes per-page cost fall as batches grow.
//
// Time advances in fixed ticks. Each tick the disk owns Tick() seconds of
// service time and spends it on queued requests in priority order; work that
// does not fit stays queued, which is how saturation and queueing delay
// emerge rather than being asserted.
package disk

import (
	"fmt"
	"math"
	"time"
)

// Params describes the physical characteristics of a simulated disk.
type Params struct {
	// SeqWriteMBps is the sustained sequential write bandwidth in MB/s.
	//kairos:unit MBps
	SeqWriteMBps float64
	// SeqReadMBps is the sustained sequential read bandwidth in MB/s.
	//kairos:unit MBps
	SeqReadMBps float64
	// FullSeekMs is the full-stroke seek time in milliseconds.
	//kairos:unit Ms
	FullSeekMs float64
	// TrackToTrackMs is the minimum (adjacent-track) seek time in ms.
	//kairos:unit Ms
	TrackToTrackMs float64
	// RPM is the spindle speed; rotational latency is derived from it.
	RPM float64
	// CacheWriteFactor models the disk controller's write cache: effective
	// rotational latency for writes is multiplied by this factor in (0,1].
	// Real controllers acknowledge writes from cache and schedule media
	// writes opportunistically, roughly halving effective overhead.
	CacheWriteFactor float64
	// CapacityBytes is the disk capacity, used to convert data extents to
	// seek distances (fraction of full stroke).
	CapacityBytes int64
}

// Server7200SATA returns parameters matching the paper's test machines:
// a single 7200 RPM SATA drive.
func Server7200SATA() Params {
	return Params{
		SeqWriteMBps:     90,
		SeqReadMBps:      100,
		FullSeekMs:       16,
		TrackToTrackMs:   0.8,
		RPM:              7200,
		CacheWriteFactor: 0.5,
		CapacityBytes:    500 << 30, // 500 GB
	}
}

// rotationalLatency returns the average rotational latency (half a turn).
func (p Params) rotationalLatency() time.Duration {
	if p.RPM <= 0 {
		return 0
	}
	secPerRev := 60.0 / p.RPM
	return time.Duration(secPerRev / 2 * float64(time.Second))
}

// seekTime returns the time to seek across distance d expressed as a
// fraction of the full stroke, using the classic a + b·sqrt(d) model.
func (p Params) seekTime(d float64) time.Duration {
	if d <= 0 {
		return 0
	}
	if d > 1 {
		d = 1
	}
	ms := p.TrackToTrackMs + (p.FullSeekMs-p.TrackToTrackMs)*math.Sqrt(d)
	return time.Duration(ms * float64(time.Millisecond))
}

// transferTime returns the time to move n bytes at the given MB/s rate.
func transferTime(n int64, mbps float64) time.Duration {
	if mbps <= 0 || n <= 0 {
		return 0
	}
	return time.Duration(float64(n) / (mbps * 1e6) * float64(time.Second))
}

// Stats accumulates disk activity. All byte counters are cumulative since
// creation or the last call to TakeStats.
type Stats struct {
	ReadOps        int64
	ReadBytes      int64
	LogBytes       int64
	LogFlushes     int64
	PageWriteOps   int64
	PageWriteBytes int64
	// BusyTime is the total service time consumed.
	BusyTime time.Duration
	// ElapsedTime is the total wall-clock simulated time.
	ElapsedTime time.Duration
	// QueuedReads is the instantaneous number of reads still waiting.
	QueuedReads int
}

// WriteBytes returns all bytes written (log plus page write-back).
func (s Stats) WriteBytes() int64 { return s.LogBytes + s.PageWriteBytes }

// TotalBytes returns all bytes moved in either direction.
func (s Stats) TotalBytes() int64 { return s.WriteBytes() + s.ReadBytes }

// Utilization returns the fraction of elapsed time the disk was busy.
func (s Stats) Utilization() float64 {
	if s.ElapsedTime <= 0 {
		return 0
	}
	u := float64(s.BusyTime) / float64(s.ElapsedTime)
	if u > 1 {
		u = 1
	}
	return u
}

// WriteMBps returns the average write throughput in MB/s over the window.
func (s Stats) WriteMBps() float64 {
	if s.ElapsedTime <= 0 {
		return 0
	}
	return float64(s.WriteBytes()) / 1e6 / s.ElapsedTime.Seconds()
}

// ReadPagesPerSec returns the average physical read rate in ops/s.
func (s Stats) ReadPagesPerSec() float64 {
	if s.ElapsedTime <= 0 {
		return 0
	}
	return float64(s.ReadOps) / s.ElapsedTime.Seconds()
}

// readReq is one pending synchronous page read.
type readReq struct {
	bytes int64
	span  float64 // seek distance as a fraction of full stroke
}

// Disk is a simulated rotational disk. It is not safe for concurrent use;
// the DBMS simulator drives it from a single goroutine.
type Disk struct {
	p Params

	pendingReads []readReq

	// Log state: sequential position per stream; switching streams costs a
	// seek, which is the penalty multiple DBMS instances pay.
	lastLogStream int
	pendingLog    []logReq

	stats     Stats
	lastStats Stats

	// lastTickSync is the service time the most recent Tick spent on
	// synchronous work (debt repayment, log writes, reads) — the part of
	// disk activity user transactions actually wait behind.
	lastTickSync time.Duration

	// spare tracks service time left over in the current tick after the
	// synchronous classes were served; write-back consumes it.
	spare time.Duration
	// debt is service time borrowed from future ticks by forced write-back
	// (a flush storm); it is repaid before any new work is served. Debt is
	// bounded (maxDebt): beyond it, forced writes are refused so queued
	// synchronous work is never starved for more than a couple of ticks —
	// real disks interleave reads between background writes.
	debt time.Duration
}

// maxDebt bounds how far forced write-back may overrun the current tick.
const maxDebt = 50 * time.Millisecond

type logReq struct {
	stream  int
	bytes   int64
	flushes int64
}

// New creates a disk with the given physical parameters.
func New(p Params) (*Disk, error) {
	if p.SeqWriteMBps <= 0 || p.SeqReadMBps <= 0 {
		return nil, fmt.Errorf("disk: sequential bandwidth must be positive, got write=%v read=%v",
			p.SeqWriteMBps, p.SeqReadMBps)
	}
	if p.CapacityBytes <= 0 {
		return nil, fmt.Errorf("disk: capacity must be positive, got %d", p.CapacityBytes)
	}
	if p.CacheWriteFactor <= 0 || p.CacheWriteFactor > 1 {
		return nil, fmt.Errorf("disk: cache write factor must be in (0,1], got %v", p.CacheWriteFactor)
	}
	return &Disk{p: p}, nil
}

// Params returns the physical parameters of the disk.
func (d *Disk) Params() Params { return d.p }

// SpanFraction converts a data extent in bytes to a fraction of the disk's
// full seek stroke, for use as the span argument of read/write submissions.
func (d *Disk) SpanFraction(extentBytes int64) float64 {
	f := float64(extentBytes) / float64(d.p.CapacityBytes)
	if f > 1 {
		return 1
	}
	if f < 0 {
		return 0
	}
	return f
}

// SubmitRead queues n random page reads of pageBytes each, scattered over an
// extent spanning the given fraction of the disk.
func (d *Disk) SubmitRead(n int, pageBytes int, span float64) {
	for i := 0; i < n; i++ {
		d.pendingReads = append(d.pendingReads, readReq{bytes: int64(pageBytes), span: span})
	}
}

// SubmitLog queues a sequential log write of the given size for a stream.
// flushes is the number of physical flush (sync) operations in the batch;
// each flush pays rotational overhead, and a stream switch pays a seek.
func (d *Disk) SubmitLog(stream int, bytes int64, flushes int64) {
	if bytes <= 0 && flushes <= 0 {
		return
	}
	d.pendingLog = append(d.pendingLog, logReq{stream: stream, bytes: bytes, flushes: flushes})
}

// randomReadTime is the service time for one random page read.
func (d *Disk) randomReadTime(bytes int64, span float64) time.Duration {
	// Average seek within the extent is roughly a third of its span.
	return d.p.seekTime(span/3) + d.p.rotationalLatency() + transferTime(bytes, d.p.SeqReadMBps)
}

// logWriteTime is the service time for a log batch on the current stream.
func (d *Disk) logWriteTime(r logReq) time.Duration {
	t := transferTime(r.bytes, d.p.SeqWriteMBps)
	// Each physical flush pays (cache-discounted) rotational overhead.
	perFlush := time.Duration(float64(d.p.rotationalLatency()) * d.p.CacheWriteFactor)
	t += time.Duration(r.flushes) * perFlush
	if r.stream != d.lastLogStream {
		// Interleaved log streams break sequentiality: pay a seek to move
		// the head to the other log extent.
		t += d.p.seekTime(0.05)
	}
	return t
}

// writeBackTime is the per-page service time for a sorted batch of n dirty
// pages spread over an extent spanning `span` of the disk. Sorting means the
// head sweeps the extent once, so the seek distance per page is span/n —
// the elevator effect — and command queuing plus the controller write cache
// pipeline the remaining positioning cost, so overhead falls roughly
// logarithmically with batch size.
func (d *Disk) writeBackTime(pageBytes int, n int, span float64) time.Duration {
	if n <= 0 {
		return 0
	}
	overhead := d.p.seekTime(span/float64(n)) +
		time.Duration(float64(d.p.rotationalLatency())*d.p.CacheWriteFactor)
	per := time.Duration(float64(overhead)*batchDiscount(n)) +
		transferTime(int64(pageBytes), d.p.SeqWriteMBps)
	return per
}

// batchDiscount models NCQ/write-cache pipelining of sorted write batches.
func batchDiscount(n int) float64 {
	if n <= 1 {
		return 1
	}
	return 1 / (1 + math.Log2(float64(n)))
}

// Tick advances simulated time by dt: serves queued log writes first (they
// are small and a waiting commit blocks whole transactions, so no real DBMS
// lets reads starve its fsyncs), then random reads, and leaves any remaining
// service time as spare capacity that WriteBack can consume in the same
// tick. It returns the number of reads completed this tick.
func (d *Disk) Tick(dt time.Duration) (readsDone int) {
	d.stats.ElapsedTime += dt
	d.lastTickSync = 0
	// Repay borrowed time first: a disk that over-committed to a forced
	// flush serves nothing until the debt clears.
	if d.debt >= dt {
		d.debt -= dt
		d.spare = 0
		d.lastTickSync = dt
		d.stats.QueuedReads = len(d.pendingReads)
		return 0
	}
	budget := dt - d.debt
	d.lastTickSync = d.debt
	d.debt = 0

	// 1. Log writes (commit path).
	for len(d.pendingLog) > 0 {
		r := d.pendingLog[0]
		t := d.logWriteTime(r)
		if t > budget {
			break
		}
		budget -= t
		d.stats.BusyTime += t
		d.lastTickSync += t
		d.stats.LogBytes += r.bytes
		d.stats.LogFlushes += r.flushes
		d.lastLogStream = r.stream
		d.pendingLog = d.pendingLog[1:]
	}
	if len(d.pendingLog) == 0 {
		d.pendingLog = nil
	}

	// 2. Synchronous reads.
	for len(d.pendingReads) > 0 {
		r := d.pendingReads[0]
		t := d.randomReadTime(r.bytes, r.span)
		if t > budget {
			break
		}
		budget -= t
		d.stats.BusyTime += t
		d.lastTickSync += t
		d.stats.ReadOps++
		d.stats.ReadBytes += r.bytes
		d.pendingReads = d.pendingReads[1:]
		readsDone++
	}
	if len(d.pendingReads) == 0 {
		d.pendingReads = nil // release backing array
	}

	d.spare = budget
	d.stats.QueuedReads = len(d.pendingReads)
	return readsDone
}

// Spare returns the service time left in the current tick after Tick served
// the synchronous classes. The flusher uses it to size write-back batches.
func (d *Disk) Spare() time.Duration { return d.spare }

// LastTickSyncLoad returns the fraction of the most recent tick spent on
// synchronous work (debt repayment, commits, reads) — the utilization user
// transactions queue behind. Background write-back uses only spare time and
// is excluded.
func (d *Disk) LastTickSyncLoad(dt time.Duration) float64 {
	if dt <= 0 {
		return 0
	}
	u := float64(d.lastTickSync) / float64(dt)
	if u > 1 {
		u = 1
	}
	return u
}

// WriteBack writes up to n dirty pages of pageBytes each, sorted over an
// extent spanning `span` of the disk, consuming at most the spare time left
// in the current tick plus — if force is set — time borrowed from the next
// tick (modelling a forced checkpoint that blocks foreground work). It
// returns the number of pages actually written.
func (d *Disk) WriteBack(n int, pageBytes int, span float64, force bool) int {
	if n <= 0 {
		return 0
	}
	per := d.writeBackTime(pageBytes, n, span)
	if per <= 0 {
		return 0
	}
	var affordable int
	if force {
		budget := d.spare + (maxDebt - d.debt)
		if budget < 0 {
			budget = 0
		}
		affordable = int(float64(budget) / float64(per))
		if affordable > n {
			affordable = n
		}
	} else {
		affordable = int(float64(d.spare) / float64(per))
		if affordable > n {
			affordable = n
		}
	}
	if affordable <= 0 {
		return 0
	}
	// Re-price at the actual batch size: a smaller batch sweeps the same
	// extent with fewer stops, so per-page cost rises.
	per = d.writeBackTime(pageBytes, affordable, span)
	total := time.Duration(affordable) * per
	if force {
		// Borrow from future capacity (bounded): the overrun becomes debt
		// repaid before new work, briefly stalling foreground I/O.
		d.stats.BusyTime += total
		if total > d.spare {
			d.debt += total - d.spare
			d.spare = 0
		} else {
			d.spare -= total
		}
	} else {
		if total > d.spare {
			total = d.spare
		}
		d.stats.BusyTime += total
		d.spare -= total
	}
	d.stats.PageWriteOps += int64(affordable)
	d.stats.PageWriteBytes += int64(affordable) * int64(pageBytes)
	return affordable
}

// QueuedReads returns the number of reads still waiting for service.
func (d *Disk) QueuedReads() int { return len(d.pendingReads) }

// QueuedLogBatches returns the number of log batches awaiting service.
// A growing log queue means commits are waiting on the disk; the DBMS uses
// it to apply commit backpressure.
func (d *Disk) QueuedLogBatches() int { return len(d.pendingLog) }

// QueuedLogBatchesFor returns the number of pending log batches submitted
// by one stream. An instance gates its commits on its own stream's backlog,
// not on other tenants' flushes.
func (d *Disk) QueuedLogBatchesFor(stream int) int {
	n := 0
	for _, r := range d.pendingLog {
		if r.stream == stream {
			n++
		}
	}
	return n
}

// Stats returns cumulative statistics since creation.
func (d *Disk) Stats() Stats {
	s := d.stats
	s.QueuedReads = len(d.pendingReads)
	return s
}

// TakeStats returns statistics accumulated since the previous TakeStats call
// (or creation) and starts a new accounting window.
func (d *Disk) TakeStats() Stats {
	cur := d.Stats()
	w := Stats{
		ReadOps:        cur.ReadOps - d.lastStats.ReadOps,
		ReadBytes:      cur.ReadBytes - d.lastStats.ReadBytes,
		LogBytes:       cur.LogBytes - d.lastStats.LogBytes,
		LogFlushes:     cur.LogFlushes - d.lastStats.LogFlushes,
		PageWriteOps:   cur.PageWriteOps - d.lastStats.PageWriteOps,
		PageWriteBytes: cur.PageWriteBytes - d.lastStats.PageWriteBytes,
		BusyTime:       cur.BusyTime - d.lastStats.BusyTime,
		ElapsedTime:    cur.ElapsedTime - d.lastStats.ElapsedTime,
		QueuedReads:    cur.QueuedReads,
	}
	d.lastStats = cur
	return w
}
