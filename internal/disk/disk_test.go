package disk

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func newTestDisk(t *testing.T) *Disk {
	t.Helper()
	d, err := New(Server7200SATA())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return d
}

func TestNewRejectsBadParams(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Params)
	}{
		{"zero write bandwidth", func(p *Params) { p.SeqWriteMBps = 0 }},
		{"negative read bandwidth", func(p *Params) { p.SeqReadMBps = -1 }},
		{"zero capacity", func(p *Params) { p.CapacityBytes = 0 }},
		{"zero cache factor", func(p *Params) { p.CacheWriteFactor = 0 }},
		{"cache factor above one", func(p *Params) { p.CacheWriteFactor = 1.5 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := Server7200SATA()
			tc.mut(&p)
			if _, err := New(p); err == nil {
				t.Fatalf("New accepted invalid params %+v", p)
			}
		})
	}
}

func TestSeekTimeMonotonic(t *testing.T) {
	p := Server7200SATA()
	prev := time.Duration(-1)
	for d := 0.0; d <= 1.0; d += 0.05 {
		s := p.seekTime(d)
		if s < prev {
			t.Fatalf("seekTime not monotonic at d=%v: %v < %v", d, s, prev)
		}
		prev = s
	}
	if got := p.seekTime(0); got != 0 {
		t.Errorf("seekTime(0) = %v, want 0", got)
	}
	if got, want := p.seekTime(2), p.seekTime(1); got != want {
		t.Errorf("seekTime clamps at 1: got %v want %v", got, want)
	}
}

func TestRotationalLatency7200(t *testing.T) {
	p := Server7200SATA()
	secPerHalfRev := 60.0 / 7200 / 2
	want := time.Duration(secPerHalfRev * float64(time.Second)) // ≈4.17ms
	if got := p.rotationalLatency(); got != want {
		t.Errorf("rotationalLatency = %v, want %v", got, want)
	}
}

func TestReadsCompleteWithinBudget(t *testing.T) {
	d := newTestDisk(t)
	d.SubmitRead(10, 16<<10, 0.01)
	done := d.Tick(time.Second)
	if done != 10 {
		t.Fatalf("10 small reads should complete in 1s, got %d", done)
	}
	st := d.Stats()
	if st.ReadOps != 10 {
		t.Errorf("ReadOps = %d, want 10", st.ReadOps)
	}
	if st.ReadBytes != 10*16<<10 {
		t.Errorf("ReadBytes = %d, want %d", st.ReadBytes, 10*16<<10)
	}
}

func TestReadSaturationQueues(t *testing.T) {
	d := newTestDisk(t)
	// A random read costs several ms; thousands cannot finish in 100ms.
	d.SubmitRead(5000, 16<<10, 0.5)
	done := d.Tick(100 * time.Millisecond)
	if done >= 5000 {
		t.Fatalf("expected saturation, but all %d reads completed", done)
	}
	if q := d.QueuedReads(); q != 5000-done {
		t.Errorf("QueuedReads = %d, want %d", q, 5000-done)
	}
	// Later ticks drain the queue.
	total := done
	for i := 0; i < 1000 && d.QueuedReads() > 0; i++ {
		total += d.Tick(100 * time.Millisecond)
	}
	if total != 5000 {
		t.Errorf("drained %d reads in total, want 5000", total)
	}
}

func TestUtilizationBounds(t *testing.T) {
	d := newTestDisk(t)
	d.SubmitRead(100000, 16<<10, 0.5)
	d.Tick(time.Second)
	u := d.Stats().Utilization()
	if u < 0.95 || u > 1.0 {
		t.Errorf("saturated utilization = %v, want ≈1", u)
	}

	d2 := newTestDisk(t)
	d2.Tick(time.Second)
	if u := d2.Stats().Utilization(); u != 0 {
		t.Errorf("idle utilization = %v, want 0", u)
	}
}

func TestLogWriteThroughputNearSequential(t *testing.T) {
	d := newTestDisk(t)
	// One big log batch with one flush should move at ~sequential speed.
	const bytes = 10 << 20
	d.SubmitLog(0, bytes, 1)
	d.Tick(time.Second)
	st := d.Stats()
	if st.LogBytes != bytes {
		t.Fatalf("LogBytes = %d, want %d", st.LogBytes, bytes)
	}
	// 10 MB at 90 MB/s is ~0.11s; busy time must be close to that.
	if st.BusyTime > 200*time.Millisecond {
		t.Errorf("BusyTime = %v, want ≲0.2s for a sequential write", st.BusyTime)
	}
}

func TestLogStreamSwitchingCostsMore(t *testing.T) {
	mkDisk := func() *Disk {
		d, err := New(Server7200SATA())
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	// Same bytes and flush count, one stream vs alternating streams.
	single := mkDisk()
	for i := 0; i < 100; i++ {
		single.SubmitLog(0, 64<<10, 1)
	}
	single.Tick(10 * time.Second)

	multi := mkDisk()
	for i := 0; i < 100; i++ {
		multi.SubmitLog(i%8, 64<<10, 1)
	}
	multi.Tick(10 * time.Second)

	sb, mb := single.Stats().BusyTime, multi.Stats().BusyTime
	if mb <= sb {
		t.Errorf("interleaved log streams should cost more: single=%v multi=%v", sb, mb)
	}
}

func TestElevatorEffect(t *testing.T) {
	d := newTestDisk(t)
	span := 0.1
	// Per-page cost must drop as batch size grows (sorted sweep).
	t100 := d.writeBackTime(16<<10, 100, span)
	t10 := d.writeBackTime(16<<10, 10, span)
	t1 := d.writeBackTime(16<<10, 1, span)
	if !(t100 < t10 && t10 < t1) {
		t.Errorf("elevator effect violated: per-page %v (n=100) %v (n=10) %v (n=1)", t100, t10, t1)
	}
}

func TestWriteBackUsesOnlySpare(t *testing.T) {
	d := newTestDisk(t)
	// Saturate the tick with reads; spare must be smaller than one read's
	// service time (the discrete model can leave at most a fragment).
	d.SubmitRead(100000, 16<<10, 0.5)
	d.Tick(100 * time.Millisecond)
	if max := d.randomReadTime(16<<10, 0.5); d.Spare() >= max {
		t.Fatalf("spare %v not smaller than one read (%v)", d.Spare(), max)
	}
	spareBefore := d.Spare()
	busyBefore := d.Stats().BusyTime
	d.WriteBack(1000, 16<<10, 0.1, false)
	used := d.Stats().BusyTime - busyBefore
	if used > spareBefore {
		t.Errorf("WriteBack used %v, more than the %v spare", used, spareBefore)
	}
}

func TestWriteBackForceBorrowsTime(t *testing.T) {
	d := newTestDisk(t)
	d.Tick(10 * time.Millisecond)
	wrote := d.WriteBack(10000, 16<<10, 0.1, true)
	if wrote == 0 {
		t.Fatal("forced WriteBack wrote nothing")
	}
	if wrote == 10000 {
		t.Fatal("forced WriteBack should be bounded by the debt cap, wrote all 10000")
	}
	// Busy time must exceed elapsed time: we borrowed from the future.
	st := d.Stats()
	if st.BusyTime <= st.ElapsedTime {
		t.Errorf("forced flush should overrun the tick: busy=%v elapsed=%v", st.BusyTime, st.ElapsedTime)
	}
	// Debt is repaid over subsequent ticks before new work.
	d.SubmitRead(1, 16<<10, 0.01)
	served := 0
	for i := 0; i < 50 && served == 0; i++ {
		served += d.Tick(10 * time.Millisecond)
	}
	if served != 1 {
		t.Error("read never served after bounded debt repayment")
	}
}

func TestWriteBackPartial(t *testing.T) {
	d := newTestDisk(t)
	d.Tick(50 * time.Millisecond) // all spare
	wrote := d.WriteBack(100000, 16<<10, 0.1, false)
	if wrote <= 0 || wrote >= 100000 {
		t.Fatalf("expected a partial write-back, got %d", wrote)
	}
	st := d.Stats()
	if st.PageWriteOps != int64(wrote) {
		t.Errorf("PageWriteOps = %d, want %d", st.PageWriteOps, wrote)
	}
}

func TestSpanFraction(t *testing.T) {
	d := newTestDisk(t)
	if got := d.SpanFraction(d.p.CapacityBytes); got != 1 {
		t.Errorf("full capacity span = %v, want 1", got)
	}
	if got := d.SpanFraction(2 * d.p.CapacityBytes); got != 1 {
		t.Errorf("over capacity span = %v, want clamped to 1", got)
	}
	if got := d.SpanFraction(-5); got != 0 {
		t.Errorf("negative span = %v, want 0", got)
	}
	half := d.SpanFraction(d.p.CapacityBytes / 2)
	if math.Abs(half-0.5) > 1e-9 {
		t.Errorf("half capacity span = %v, want 0.5", half)
	}
}

func TestTakeStatsWindows(t *testing.T) {
	d := newTestDisk(t)
	d.SubmitRead(5, 16<<10, 0.01)
	d.Tick(time.Second)
	w1 := d.TakeStats()
	if w1.ReadOps != 5 {
		t.Fatalf("window 1 ReadOps = %d, want 5", w1.ReadOps)
	}
	d.SubmitRead(3, 16<<10, 0.01)
	d.Tick(time.Second)
	w2 := d.TakeStats()
	if w2.ReadOps != 3 {
		t.Errorf("window 2 ReadOps = %d, want 3", w2.ReadOps)
	}
	if w2.ElapsedTime != time.Second {
		t.Errorf("window 2 ElapsedTime = %v, want 1s", w2.ElapsedTime)
	}
}

func TestStatsDerived(t *testing.T) {
	s := Stats{
		ReadOps: 10, ReadBytes: 100, LogBytes: 200, PageWriteBytes: 300,
		BusyTime: 500 * time.Millisecond, ElapsedTime: time.Second,
	}
	if got := s.WriteBytes(); got != 500 {
		t.Errorf("WriteBytes = %d, want 500", got)
	}
	if got := s.TotalBytes(); got != 600 {
		t.Errorf("TotalBytes = %d, want 600", got)
	}
	if got := s.Utilization(); got != 0.5 {
		t.Errorf("Utilization = %v, want 0.5", got)
	}
	if got := s.ReadPagesPerSec(); got != 10 {
		t.Errorf("ReadPagesPerSec = %v, want 10", got)
	}
	if got := s.WriteMBps(); math.Abs(got-500.0/1e6) > 1e-12 {
		t.Errorf("WriteMBps = %v", got)
	}
}

// Property: for any workload mix the disk conserves work — bytes accounted
// in stats equal bytes submitted and completed, and busy never exceeds
// elapsed time unless a forced flush borrowed time.
func TestPropertyWorkConservation(t *testing.T) {
	f := func(reads uint8, logKB uint8, ticks uint8) bool {
		d, err := New(Server7200SATA())
		if err != nil {
			return false
		}
		n := int(reads)
		d.SubmitRead(n, 16<<10, 0.2)
		d.SubmitLog(0, int64(logKB)<<10, 1)
		totalDone := 0
		for i := 0; i < int(ticks)+50; i++ {
			totalDone += d.Tick(100 * time.Millisecond)
		}
		st := d.Stats()
		if totalDone != n || st.ReadOps != int64(n) {
			return false
		}
		if st.LogBytes != int64(logKB)<<10 && logKB > 0 {
			return false
		}
		return st.BusyTime <= st.ElapsedTime
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: utilization is always within [0, 1] under non-forced operation.
func TestPropertyUtilizationRange(t *testing.T) {
	f := func(reads uint16, span uint8) bool {
		d, err := New(Server7200SATA())
		if err != nil {
			return false
		}
		s := float64(span) / 255
		d.SubmitRead(int(reads), 16<<10, s)
		d.Tick(time.Second)
		d.WriteBack(int(reads), 16<<10, s, false)
		u := d.Stats().Utilization()
		return u >= 0 && u <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQueuedLogBatchesFor(t *testing.T) {
	d := newTestDisk(t)
	d.SubmitLog(1, 1024, 1)
	d.SubmitLog(2, 1024, 1)
	d.SubmitLog(1, 1024, 1)
	if got := d.QueuedLogBatchesFor(1); got != 2 {
		t.Errorf("stream 1 queue = %d, want 2", got)
	}
	if got := d.QueuedLogBatchesFor(2); got != 1 {
		t.Errorf("stream 2 queue = %d, want 1", got)
	}
	if got := d.QueuedLogBatchesFor(9); got != 0 {
		t.Errorf("stream 9 queue = %d, want 0", got)
	}
	d.Tick(time.Second)
	if got := d.QueuedLogBatches(); got != 0 {
		t.Errorf("after service, queue = %d, want 0", got)
	}
}

func TestBatchDiscountMonotone(t *testing.T) {
	prev := batchDiscount(1)
	if prev != 1 {
		t.Errorf("batchDiscount(1) = %v, want 1", prev)
	}
	for n := 2; n <= 4096; n *= 2 {
		d := batchDiscount(n)
		if d >= prev || d <= 0 {
			t.Errorf("batchDiscount(%d) = %v, not decreasing from %v", n, d, prev)
		}
		prev = d
	}
}
