// Package greedy implements the single-resource greedy bin-packing baseline
// the paper compares Kairos against (Section 7.3): "This algorithm considers
// only a single resource, and places each workload in the most loaded server
// where it will fit using a first-fit bin packer. We then discard final
// solutions that violate the constraints on the other resources. We repeat
// this packing once for each resource, then take the solution that requires
// the fewest servers."
//
// The same packer doubles as the cheap upper bound for the consolidation
// engine's binary search on the server count (Section 6).
package greedy

import (
	"fmt"
	"sort"
	"sync"
)

// FitsFunc reports whether `item` can join the items already placed in a
// bin without violating any constraint. Implementations close over the full
// multi-resource feasibility check.
type FitsFunc func(bin []int, item int) bool

// Pack assigns items to bins most-loaded-first: items are sorted by
// descending load, and each item goes to the fullest bin that accepts it,
// opening a new bin only when no existing bin fits. It returns the bins
// (each a list of item indices) and whether packing succeeded within
// maxBins. maxBins ≤ 0 means unlimited.
func Pack(loads []float64, fits FitsFunc, maxBins int) ([][]int, bool, error) {
	if fits == nil {
		return nil, false, fmt.Errorf("greedy: nil fits function")
	}
	n := len(loads)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	// Decreasing load; ties broken by index for determinism.
	sort.SliceStable(order, func(a, b int) bool {
		return loads[order[a]] > loads[order[b]]
	})

	var bins [][]int
	binLoad := []float64{}
	for _, item := range order {
		// Try bins from most to least loaded.
		binOrder := make([]int, len(bins))
		for i := range binOrder {
			binOrder[i] = i
		}
		sort.SliceStable(binOrder, func(a, b int) bool {
			return binLoad[binOrder[a]] > binLoad[binOrder[b]]
		})
		placed := false
		for _, b := range binOrder {
			if fits(bins[b], item) {
				bins[b] = append(bins[b], item)
				binLoad[b] += loads[item]
				placed = true
				break
			}
		}
		if !placed {
			if maxBins > 0 && len(bins) >= maxBins {
				return nil, false, nil
			}
			if !fits(nil, item) {
				// The item does not fit even on an empty bin.
				return nil, false, nil
			}
			bins = append(bins, []int{item})
			binLoad = append(binLoad, loads[item])
		}
	}
	return bins, true, nil
}

// MultiResource runs Pack once per resource dimension (each row of loads is
// one resource's per-item scalar load) and returns the feasible solution
// with the fewest bins, as the paper's greedy baseline does. It returns
// ok=false if no single-resource ordering produces a feasible packing.
func MultiResource(loads [][]float64, fits FitsFunc, maxBins int) ([][]int, bool, error) {
	if len(loads) == 0 {
		return nil, false, fmt.Errorf("greedy: no resource dimensions")
	}
	n := len(loads[0])
	for r, row := range loads {
		if len(row) != n {
			return nil, false, fmt.Errorf("greedy: resource %d has %d items, want %d", r, len(row), n)
		}
	}
	var best [][]int
	found := false
	for _, row := range loads {
		bins, ok, err := Pack(row, fits, maxBins)
		if err != nil {
			return nil, false, err
		}
		if ok && (!found || len(bins) < len(best)) {
			best = bins
			found = true
		}
	}
	return best, found, nil
}

// MultiResourceParallel is MultiResource with the per-resource packings run
// concurrently. Because a FitsFunc usually closes over stateful evaluation
// scratch, the caller supplies a factory instead of a single function:
// mkFits(r) is invoked serially, once per resource row r, and each returned
// FitsFunc is used by exactly one goroutine. Result selection matches
// MultiResource exactly (fewest bins, earliest resource on ties), so the
// outcome is identical for every workers value; workers ≤ 1 falls back to
// the sequential path.
func MultiResourceParallel(loads [][]float64, mkFits func(resource int) FitsFunc, maxBins, workers int) ([][]int, bool, error) {
	if mkFits == nil {
		return nil, false, fmt.Errorf("greedy: nil fits factory")
	}
	if len(loads) == 0 {
		return nil, false, fmt.Errorf("greedy: no resource dimensions")
	}
	n := len(loads[0])
	for r, row := range loads {
		if len(row) != n {
			return nil, false, fmt.Errorf("greedy: resource %d has %d items, want %d", r, len(row), n)
		}
	}
	if workers <= 1 || len(loads) == 1 {
		return MultiResource(loads, mkFits(0), maxBins)
	}

	type result struct {
		bins [][]int
		ok   bool
		err  error
	}
	results := make([]result, len(loads))
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for r := range loads {
		fits := mkFits(r)
		wg.Add(1)
		go func(r int, fits FitsFunc) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			bins, ok, err := Pack(loads[r], fits, maxBins)
			results[r] = result{bins, ok, err}
		}(r, fits)
	}
	wg.Wait()

	var best [][]int
	found := false
	for _, res := range results {
		if res.err != nil {
			return nil, false, res.err
		}
		if res.ok && (!found || len(res.bins) < len(best)) {
			best = res.bins
			found = true
		}
	}
	return best, found, nil
}

// Assignment flattens bins into an item → bin index mapping.
func Assignment(bins [][]int, n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = -1
	}
	for b, items := range bins {
		for _, it := range items {
			if it >= 0 && it < n {
				out[it] = b
			}
		}
	}
	return out
}
