package greedy

import (
	"testing"
	"testing/quick"
)

// capFits returns a FitsFunc enforcing a simple capacity on summed loads.
func capFits(loads []float64, capacity float64) FitsFunc {
	return func(bin []int, item int) bool {
		sum := loads[item]
		for _, i := range bin {
			sum += loads[i]
		}
		return sum <= capacity
	}
}

func TestPackValidation(t *testing.T) {
	if _, _, err := Pack([]float64{1}, nil, 0); err == nil {
		t.Error("nil fits accepted")
	}
}

func TestPackSimple(t *testing.T) {
	loads := []float64{0.6, 0.5, 0.4, 0.3, 0.2}
	bins, ok, err := Pack(loads, capFits(loads, 1.0), 0)
	if err != nil || !ok {
		t.Fatalf("pack failed: ok=%v err=%v", ok, err)
	}
	if len(bins) != 2 {
		t.Errorf("bins = %d, want 2 (0.6+0.4, 0.5+0.3+0.2)", len(bins))
	}
	// Every item placed exactly once.
	seen := map[int]int{}
	for _, b := range bins {
		for _, i := range b {
			seen[i]++
		}
	}
	for i := range loads {
		if seen[i] != 1 {
			t.Errorf("item %d placed %d times", i, seen[i])
		}
	}
}

func TestPackRespectsMaxBins(t *testing.T) {
	loads := []float64{0.9, 0.9, 0.9}
	_, ok, err := Pack(loads, capFits(loads, 1.0), 2)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("3 incompressible items should not fit in 2 bins")
	}
	bins, ok, err := Pack(loads, capFits(loads, 1.0), 3)
	if err != nil || !ok || len(bins) != 3 {
		t.Errorf("should fit in 3 bins: ok=%v len=%d err=%v", ok, len(bins), err)
	}
}

func TestPackImpossibleItem(t *testing.T) {
	loads := []float64{2.0}
	_, ok, err := Pack(loads, capFits(loads, 1.0), 0)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("oversized item should fail packing")
	}
}

func TestPackPrefersMostLoadedBin(t *testing.T) {
	// First-fit into the most loaded bin: after placing 0.5 and 0.4 in one
	// bin... capacity 1.0: items sorted 0.5, 0.4, 0.3: 0.5→bin0; 0.4→bin0
	// (0.9); 0.3 does not fit bin0 → bin1.
	loads := []float64{0.5, 0.4, 0.3}
	bins, ok, err := Pack(loads, capFits(loads, 1.0), 0)
	if err != nil || !ok {
		t.Fatal(err)
	}
	if len(bins) != 2 || len(bins[0]) != 2 {
		t.Errorf("unexpected packing %v", bins)
	}
}

func TestMultiResourcePicksBest(t *testing.T) {
	// Resource 0 ordering packs into 2 bins; resource 1 ordering leads to
	// the same or worse. The combined fits respects both capacities.
	cpu := []float64{0.6, 0.4, 0.5, 0.5}
	ram := []float64{0.3, 0.3, 0.3, 0.3}
	fits := func(bin []int, item int) bool {
		c, r := cpu[item], ram[item]
		for _, i := range bin {
			c += cpu[i]
			r += ram[i]
		}
		return c <= 1.0 && r <= 1.0
	}
	bins, ok, err := MultiResource([][]float64{cpu, ram}, fits, 0)
	if err != nil || !ok {
		t.Fatalf("multi-resource failed: %v %v", ok, err)
	}
	if len(bins) != 2 {
		t.Errorf("bins = %d, want 2", len(bins))
	}
}

func TestMultiResourceValidation(t *testing.T) {
	if _, _, err := MultiResource(nil, func([]int, int) bool { return true }, 0); err == nil {
		t.Error("no dimensions accepted")
	}
	if _, _, err := MultiResource([][]float64{{1, 2}, {1}}, func([]int, int) bool { return true }, 0); err == nil {
		t.Error("ragged dimensions accepted")
	}
}

func TestMultiResourceAllFail(t *testing.T) {
	loads := [][]float64{{2, 2}}
	_, ok, err := MultiResource(loads, capFits(loads[0], 1.0), 0)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("infeasible instance reported ok")
	}
}

func TestAssignment(t *testing.T) {
	bins := [][]int{{2, 0}, {1}}
	got := Assignment(bins, 4)
	want := []int{0, 1, 0, -1}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Assignment[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

// Property: packing with a sum-capacity fits never overfills a bin and
// places every item exactly once.
func TestPropertyPackSound(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		if len(raw) > 40 {
			raw = raw[:40]
		}
		loads := make([]float64, len(raw))
		for i, r := range raw {
			loads[i] = float64(r%100) / 100 // in [0, 0.99]
		}
		bins, ok, err := Pack(loads, capFits(loads, 1.0), 0)
		if err != nil || !ok {
			return false
		}
		seen := make([]bool, len(loads))
		for _, b := range bins {
			var sum float64
			for _, i := range b {
				if seen[i] {
					return false
				}
				seen[i] = true
				sum += loads[i]
			}
			if sum > 1.0+1e-9 {
				return false
			}
		}
		for _, s := range seen {
			if !s {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: greedy never uses more bins than items, and at least
// ceil(total/capacity) bins.
func TestPropertyBinCountBounds(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		if len(raw) > 30 {
			raw = raw[:30]
		}
		loads := make([]float64, len(raw))
		var total float64
		for i, r := range raw {
			loads[i] = float64(r%90+1) / 100
			total += loads[i]
		}
		bins, ok, err := Pack(loads, capFits(loads, 1.0), 0)
		if err != nil || !ok {
			return false
		}
		lower := int(total) // floor(total/1.0) ≤ ceil
		return len(bins) <= len(loads) && len(bins) >= lower
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// MultiResourceParallel must agree with MultiResource exactly, including
// tie-breaks, for every worker count.
func TestMultiResourceParallelMatchesSequential(t *testing.T) {
	cpu := []float64{0.5, 0.4, 0.3, 0.3, 0.2, 0.2, 0.1, 0.1}
	ram := []float64{0.2, 0.3, 0.5, 0.1, 0.4, 0.2, 0.3, 0.1}
	upd := []float64{0.1, 0.1, 0.2, 0.6, 0.1, 0.3, 0.2, 0.2}
	loads := [][]float64{cpu, ram, upd}
	fits := func(bin []int, item int) bool {
		for _, row := range loads {
			sum := row[item]
			for _, i := range bin {
				sum += row[i]
			}
			if sum > 1.0 {
				return false
			}
		}
		return true
	}
	seqBins, seqOK, err := MultiResource(loads, fits, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		parBins, parOK, err := MultiResourceParallel(loads, func(int) FitsFunc { return fits }, 0, workers)
		if err != nil {
			t.Fatal(err)
		}
		if parOK != seqOK || len(parBins) != len(seqBins) {
			t.Fatalf("workers=%d: ok=%v bins=%d, want ok=%v bins=%d",
				workers, parOK, len(parBins), seqOK, len(seqBins))
		}
		for b := range seqBins {
			if len(parBins[b]) != len(seqBins[b]) {
				t.Errorf("workers=%d: bin %d = %v, want %v", workers, b, parBins[b], seqBins[b])
				continue
			}
			for i := range seqBins[b] {
				if parBins[b][i] != seqBins[b][i] {
					t.Errorf("workers=%d: bin %d = %v, want %v", workers, b, parBins[b], seqBins[b])
					break
				}
			}
		}
	}
}

func TestMultiResourceParallelValidation(t *testing.T) {
	if _, _, err := MultiResourceParallel(nil, func(int) FitsFunc { return nil }, 0, 2); err == nil {
		t.Error("empty loads accepted")
	}
	if _, _, err := MultiResourceParallel([][]float64{{1}}, nil, 0, 2); err == nil {
		t.Error("nil factory accepted")
	}
	if _, _, err := MultiResourceParallel([][]float64{{1, 2}, {1}}, func(int) FitsFunc { return nil }, 0, 2); err == nil {
		t.Error("ragged loads accepted")
	}
}
