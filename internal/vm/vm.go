// Package vm simulates the three consolidation strategies the paper
// compares in Section 7.4:
//
//   - ConsolidatedDBMS — Kairos' approach: one DBMS instance hosting every
//     database, sharing one buffer pool and one log stream;
//   - OSVirtualization — one DBMS process per database on a shared kernel
//     (containers/zones): RAM statically partitioned, one log stream per
//     process, duplicated DBMS process overhead;
//   - HardwareVirtualization — one VM per database (VMware-style): all the
//     OS-virtualization costs plus a duplicated guest OS per VM, a
//     hypervisor CPU tax, and context-switch overhead that grows with the
//     number of VMs.
//
// All three run on the same simulated disk and the same total CPU/RAM, so
// throughput differences come only from the structural overheads the paper
// identifies: redundant log streams de-sequentialize the disk, duplicated
// OS+DBMS copies burn RAM, and the hypervisor burns CPU.
package vm

import (
	"fmt"
	"sort"
	"time"

	"kairos/internal/dbms"
	"kairos/internal/disk"
	"kairos/internal/workload"
)

// Mode selects the consolidation strategy.
type Mode int

const (
	// ConsolidatedDBMS runs one DBMS instance with many databases.
	ConsolidatedDBMS Mode = iota
	// OSVirtualization runs one DBMS process per database on one kernel.
	OSVirtualization
	// HardwareVirtualization runs one VM (guest OS + DBMS) per database.
	HardwareVirtualization
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case ConsolidatedDBMS:
		return "consolidated-dbms"
	case OSVirtualization:
		return "os-virtualization"
	case HardwareVirtualization:
		return "hw-virtualization"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// HostConfig describes the physical machine and the strategy to simulate.
type HostConfig struct {
	Mode Mode
	// TotalRAMBytes is the machine's physical memory.
	TotalRAMBytes int64
	// CPUCores and CoreOpsPerSec define the machine's CPU capacity.
	CPUCores      int
	CoreOpsPerSec float64
	// Disk is the physical disk profile.
	Disk disk.Params
	// DBMS is the per-instance configuration template; buffer pool size and
	// CPU fields are overridden per mode.
	DBMS dbms.Config
	// HypervisorCPUTax is the fraction of CPU burned by the hypervisor per
	// VM operation (hardware virtualization only).
	HypervisorCPUTax float64
	// ContextSwitchTaxPerVM is additional CPU overhead per extra VM,
	// modelling more frequent and more expensive context switches.
	ContextSwitchTaxPerVM float64
}

// DefaultHostConfig returns the paper's Server 1 (8 cores, 32 GB RAM, one
// 7200 RPM SATA disk) with VMware-like overhead parameters.
func DefaultHostConfig(mode Mode) HostConfig {
	return HostConfig{
		Mode:                  mode,
		TotalRAMBytes:         32 << 30,
		CPUCores:              8,
		CoreOpsPerSec:         2.0e6,
		Disk:                  disk.Server7200SATA(),
		DBMS:                  dbms.DefaultConfig(),
		HypervisorCPUTax:      0.12,
		ContextSwitchTaxPerVM: 0.004,
	}
}

// tenant is one workload with its instance (shared in consolidated mode).
type tenant struct {
	gen  *workload.Generator
	inst *dbms.Instance
}

// Host is a physical machine running workloads under one of the strategies.
type Host struct {
	cfg     HostConfig
	disk    *disk.Disk
	shared  *dbms.Instance // consolidated mode only
	tenants []tenant
	clock   time.Duration
}

// NewHost creates an empty host.
func NewHost(cfg HostConfig) (*Host, error) {
	if cfg.TotalRAMBytes <= 0 {
		return nil, fmt.Errorf("vm: total RAM must be positive, got %d", cfg.TotalRAMBytes)
	}
	if cfg.CPUCores <= 0 || cfg.CoreOpsPerSec <= 0 {
		return nil, fmt.Errorf("vm: CPU capacity must be positive")
	}
	d, err := disk.New(cfg.Disk)
	if err != nil {
		return nil, err
	}
	return &Host{cfg: cfg, disk: d}, nil
}

// Mode returns the host's consolidation strategy.
func (h *Host) Mode() Mode { return h.cfg.Mode }

// Disk returns the host's disk.
func (h *Host) Disk() *disk.Disk { return h.disk }

// Tenants returns the number of hosted workloads.
func (h *Host) Tenants() int { return len(h.tenants) }

// AddWorkloads places the given workloads on the host, sizing buffer pools
// according to the mode's RAM layout, and optionally pre-warms working sets.
// It must be called exactly once, before Run.
func (h *Host) AddWorkloads(specs []workload.Spec, warm bool) error {
	if len(h.tenants) > 0 {
		return fmt.Errorf("vm: workloads already added")
	}
	if len(specs) == 0 {
		return fmt.Errorf("vm: no workloads")
	}
	n := int64(len(specs))
	base := h.cfg.DBMS

	switch h.cfg.Mode {
	case ConsolidatedDBMS:
		// One OS, one DBMS process, one big buffer pool.
		cfg := base
		cfg.CPUCores = h.cfg.CPUCores
		cfg.CoreOpsPerSec = h.cfg.CoreOpsPerSec
		cfg.BufferPoolBytes = h.cfg.TotalRAMBytes - base.OSRAMBytes - base.ProcessRAMBytes
		if cfg.BufferPoolBytes < int64(cfg.PageSize) {
			return fmt.Errorf("vm: RAM too small for consolidated pool")
		}
		inst, err := dbms.NewInstance(cfg, h.disk, 0)
		if err != nil {
			return err
		}
		h.shared = inst
		for _, spec := range specs {
			gen, err := workload.Provision(inst, spec, warm)
			if err != nil {
				return err
			}
			h.tenants = append(h.tenants, tenant{gen: gen, inst: inst})
		}

	case OSVirtualization, HardwareVirtualization:
		// RAM is statically partitioned. OS virtualization shares one
		// kernel; hardware virtualization duplicates the guest OS per VM.
		perVM := (h.cfg.TotalRAMBytes - base.OSRAMBytes) / n
		osCopies := int64(0)
		if h.cfg.Mode == HardwareVirtualization {
			perVM = h.cfg.TotalRAMBytes / n
			osCopies = 1
		}
		for i, spec := range specs {
			cfg := base
			cfg.Seed = base.Seed + uint64(i)
			cfg.CPUCores = h.cfg.CPUCores
			// CPU capacity is granted per tick by the host scheduler; the
			// per-instance CoreOpsPerSec only scales latency estimates.
			cfg.CoreOpsPerSec = h.cfg.CoreOpsPerSec
			cfg.BufferPoolBytes = perVM - base.ProcessRAMBytes - osCopies*base.OSRAMBytes
			if cfg.BufferPoolBytes < int64(cfg.PageSize) {
				return fmt.Errorf("vm: RAM too small for %d %s tenants", n, h.cfg.Mode)
			}
			inst, err := dbms.NewInstance(cfg, h.disk, i)
			if err != nil {
				return err
			}
			gen, err := workload.Provision(inst, spec, warm)
			if err != nil {
				return err
			}
			h.tenants = append(h.tenants, tenant{gen: gen, inst: inst})
		}

	default:
		return fmt.Errorf("vm: unknown mode %v", h.cfg.Mode)
	}
	return nil
}

// cpuOpsPerTick returns the host CPU capacity for one tick after the
// mode-specific virtualization taxes.
func (h *Host) cpuOpsPerTick(dt time.Duration) float64 {
	total := float64(h.cfg.CPUCores) * h.cfg.CoreOpsPerSec * dt.Seconds()
	if h.cfg.Mode == HardwareVirtualization {
		tax := h.cfg.HypervisorCPUTax + h.cfg.ContextSwitchTaxPerVM*float64(len(h.tenants))
		if tax > 0.9 {
			tax = 0.9
		}
		total *= 1 - tax
	}
	return total
}

// RunStats summarises a Run.
type RunStats struct {
	// TotalTxns is the number of transactions completed across tenants.
	TotalTxns int64
	// PerTenantTxns is the per-workload completed transaction count, in
	// AddWorkloads order.
	PerTenantTxns []int64
	// Elapsed is the simulated duration.
	Elapsed time.Duration
	// ThroughputTPS is the aggregate transaction throughput.
	ThroughputTPS float64
	// PerTenantTPS is the per-workload throughput.
	PerTenantTPS []float64
	// AvgDiskUtilization is the mean disk busy fraction.
	AvgDiskUtilization float64
}

// Run advances the host by total simulated time in steps of dt and returns
// aggregate statistics. CPU is shared across instances with max-min
// fairness (work-conserving, like a real scheduler), and the single disk
// serves every instance's reads, log streams and write-back.
func (h *Host) Run(total, dt time.Duration) (RunStats, error) {
	if len(h.tenants) == 0 {
		return RunStats{}, fmt.Errorf("vm: no workloads added")
	}
	startTxns := make([]int64, len(h.tenants))
	for i, t := range h.tenants {
		startTxns[i] = t.gen.DB().Stats().Txns
	}
	diskStart := h.disk.Stats()

	instances := h.instances()
	ticks := int(total / dt)
	for tick := 0; tick < ticks; tick++ {
		// Generate and enqueue this tick's demands.
		for _, t := range h.tenants {
			req := t.gen.Next(dt)
			t.inst.Enqueue([]dbms.Request{req})
		}
		// Divide the host CPU between instances: max-min fairness over
		// their demands (work-conserving).
		budget := h.cpuOpsPerTick(dt)
		demands := make([]float64, len(instances))
		for i, inst := range instances {
			demands[i] = inst.DemandCPUOps()
		}
		grants := maxMinFair(demands, budget)
		states := make([]dbms.SubmitState, len(instances))
		for i, inst := range instances {
			states[i] = inst.RunWork(dt, grants[i])
		}
		// One disk serves everything.
		h.disk.Tick(dt)
		for i, inst := range instances {
			inst.PostTick(dt, states[i])
		}
		h.clock += dt
	}

	stats := RunStats{Elapsed: total}
	stats.PerTenantTxns = make([]int64, len(h.tenants))
	stats.PerTenantTPS = make([]float64, len(h.tenants))
	for i, t := range h.tenants {
		done := t.gen.DB().Stats().Txns - startTxns[i]
		stats.PerTenantTxns[i] = done
		stats.PerTenantTPS[i] = float64(done) / total.Seconds()
		stats.TotalTxns += done
	}
	stats.ThroughputTPS = float64(stats.TotalTxns) / total.Seconds()
	dnow := h.disk.Stats()
	if el := dnow.ElapsedTime - diskStart.ElapsedTime; el > 0 {
		u := float64(dnow.BusyTime-diskStart.BusyTime) / float64(el)
		if u > 1 {
			u = 1
		}
		stats.AvgDiskUtilization = u
	}
	return stats, nil
}

// instances returns the distinct DBMS instances on the host.
func (h *Host) instances() []*dbms.Instance {
	if h.shared != nil {
		return []*dbms.Instance{h.shared}
	}
	out := make([]*dbms.Instance, len(h.tenants))
	for i, t := range h.tenants {
		out[i] = t.inst
	}
	return out
}

// maxMinFair divides capacity across demands with progressive filling: no
// instance gets more than it asked for, unmet demand shares the remainder
// equally — the behaviour of a work-conserving CPU scheduler.
func maxMinFair(demands []float64, capacity float64) []float64 {
	n := len(demands)
	grants := make([]float64, n)
	if n == 0 || capacity <= 0 {
		return grants
	}
	type entry struct {
		idx    int
		demand float64
	}
	order := make([]entry, n)
	for i, d := range demands {
		if d < 0 {
			d = 0
		}
		order[i] = entry{i, d}
	}
	sort.Slice(order, func(a, b int) bool { return order[a].demand < order[b].demand })
	remaining := capacity
	for i, e := range order {
		share := remaining / float64(n-i)
		g := e.demand
		if g > share {
			g = share
		}
		grants[e.idx] = g
		remaining -= g
	}
	return grants
}
