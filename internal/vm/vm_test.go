package vm

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"
	"time"

	"kairos/internal/workload"
)

func TestModeString(t *testing.T) {
	if ConsolidatedDBMS.String() != "consolidated-dbms" ||
		OSVirtualization.String() != "os-virtualization" ||
		HardwareVirtualization.String() != "hw-virtualization" {
		t.Error("unexpected mode strings")
	}
	if Mode(99).String() == "" {
		t.Error("unknown mode should still render")
	}
}

func TestNewHostValidation(t *testing.T) {
	cfg := DefaultHostConfig(ConsolidatedDBMS)
	cfg.TotalRAMBytes = 0
	if _, err := NewHost(cfg); err == nil {
		t.Error("zero RAM accepted")
	}
	cfg = DefaultHostConfig(ConsolidatedDBMS)
	cfg.CPUCores = 0
	if _, err := NewHost(cfg); err == nil {
		t.Error("zero cores accepted")
	}
}

func smallTPCC(n int, tps float64) []workload.Spec {
	specs := make([]workload.Spec, n)
	for i := range specs {
		s := workload.TPCC(1, tps)
		s.Name = s.Name + "-" + string(rune('a'+i))
		specs[i] = s
	}
	return specs
}

func TestAddWorkloadsLifecycle(t *testing.T) {
	h, err := NewHost(DefaultHostConfig(ConsolidatedDBMS))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Run(time.Second, 100*time.Millisecond); err == nil {
		t.Error("Run before AddWorkloads accepted")
	}
	if err := h.AddWorkloads(nil, false); err == nil {
		t.Error("empty workload list accepted")
	}
	if err := h.AddWorkloads(smallTPCC(3, 10), true); err != nil {
		t.Fatal(err)
	}
	if h.Tenants() != 3 {
		t.Errorf("Tenants = %d, want 3", h.Tenants())
	}
	if err := h.AddWorkloads(smallTPCC(2, 10), true); err == nil {
		t.Error("double AddWorkloads accepted")
	}
}

func TestRAMTooSmallForManyVMs(t *testing.T) {
	cfg := DefaultHostConfig(HardwareVirtualization)
	cfg.TotalRAMBytes = 2 << 30 // 2 GB cannot hold 20 VMs with 254 MB overhead each
	h, err := NewHost(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.AddWorkloads(smallTPCC(20, 1), false); err == nil {
		t.Error("over-packed VM host accepted")
	}
}

func TestConsolidatedBeatsHardwareVirtualization(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping 30s simulated run in -short mode")
	}
	// The paper's Figure 10: at 20:1 consolidation, the consolidated DBMS
	// sustains several times the throughput of one-VM-per-database. The
	// paper drives TPC-C at maximum speed; 200 tps per tenant is far beyond
	// what the virtualized strategies can serve.
	const tenants = 20
	run := func(mode Mode) float64 {
		cfg := DefaultHostConfig(mode)
		h, err := NewHost(cfg)
		if err != nil {
			t.Fatal(err)
		}
		// Uniform demand high enough to saturate the weaker strategies.
		if err := h.AddWorkloads(smallTPCC(tenants, 200), true); err != nil {
			t.Fatal(err)
		}
		st, err := h.Run(30*time.Second, 100*time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		return st.ThroughputTPS
	}
	cons := run(ConsolidatedDBMS)
	hw := run(HardwareVirtualization)
	if cons <= hw {
		t.Fatalf("consolidated (%.1f tps) should beat hardware virtualization (%.1f tps)", cons, hw)
	}
	if ratio := cons / hw; ratio < 1.5 {
		t.Errorf("expected a clear consolidated advantage, got only %.2fx", ratio)
	}
}

func TestOSVirtualizationBetweenExtremes(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping three 30s simulated runs in -short mode")
	}
	const tenants = 20
	run := func(mode Mode) float64 {
		h, err := NewHost(DefaultHostConfig(mode))
		if err != nil {
			t.Fatal(err)
		}
		if err := h.AddWorkloads(smallTPCC(tenants, 200), true); err != nil {
			t.Fatal(err)
		}
		st, err := h.Run(30*time.Second, 100*time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		return st.ThroughputTPS
	}
	cons := run(ConsolidatedDBMS)
	osv := run(OSVirtualization)
	hw := run(HardwareVirtualization)
	if !(cons >= osv*0.98 && osv >= hw*0.98) {
		t.Errorf("expected consolidated ≥ OS-virt ≥ HW-virt, got %.1f / %.1f / %.1f", cons, osv, hw)
	}
}

func TestSkewedWorkloadConsolidatedAdvantage(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping long simulated run in -short mode")
	}
	// Figure 10 right: 19 throttled databases plus 1 at maximum speed. The
	// consolidated DBMS gives the hot database the whole machine.
	mkSpecs := func() []workload.Spec {
		// 10-warehouse tenants: the hot one's 1.4 GB working set fits the
		// consolidated buffer pool easily but overflows a 1/20th VM slice.
		specs := make([]workload.Spec, 20)
		for i := range specs {
			s := workload.TPCC(10, 1) // throttled to ~1 tps
			s.Name = fmt.Sprintf("%s-%02d", s.Name, i)
			specs[i] = s
		}
		specs[0].TPS = 800 // one runs at maximum speed
		return specs
	}
	run := func(mode Mode) float64 {
		h, err := NewHost(DefaultHostConfig(mode))
		if err != nil {
			t.Fatal(err)
		}
		if err := h.AddWorkloads(mkSpecs(), true); err != nil {
			t.Fatal(err)
		}
		st, err := h.Run(30*time.Second, 100*time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		return st.ThroughputTPS
	}
	cons := run(ConsolidatedDBMS)
	hw := run(HardwareVirtualization)
	if cons <= hw {
		t.Errorf("skewed: consolidated (%.1f tps) should beat HW virt (%.1f tps)", cons, hw)
	}
}

func TestPerTenantFairness(t *testing.T) {
	// Under uniform saturating load the consolidated DBMS should divide
	// throughput roughly evenly (the paper observes MySQL does).
	h, err := NewHost(DefaultHostConfig(ConsolidatedDBMS))
	if err != nil {
		t.Fatal(err)
	}
	if err := h.AddWorkloads(smallTPCC(8, 200), true); err != nil {
		t.Fatal(err)
	}
	st, err := h.Run(20*time.Second, 100*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	var mn, mx float64 = math.Inf(1), 0
	for _, tps := range st.PerTenantTPS {
		mn = math.Min(mn, tps)
		mx = math.Max(mx, tps)
	}
	if mn <= 0 {
		t.Fatal("a tenant starved completely")
	}
	if mx/mn > 1.6 {
		t.Errorf("unfair division: min=%.1f max=%.1f tps", mn, mx)
	}
}

func TestRunStatsConsistency(t *testing.T) {
	h, err := NewHost(DefaultHostConfig(ConsolidatedDBMS))
	if err != nil {
		t.Fatal(err)
	}
	if err := h.AddWorkloads(smallTPCC(3, 20), true); err != nil {
		t.Fatal(err)
	}
	st, err := h.Run(10*time.Second, 100*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	var sum int64
	for _, n := range st.PerTenantTxns {
		sum += n
	}
	if sum != st.TotalTxns {
		t.Errorf("per-tenant sum %d != total %d", sum, st.TotalTxns)
	}
	wantTPS := float64(st.TotalTxns) / 10
	if math.Abs(st.ThroughputTPS-wantTPS) > 1e-9 {
		t.Errorf("ThroughputTPS = %v, want %v", st.ThroughputTPS, wantTPS)
	}
	if st.AvgDiskUtilization < 0 || st.AvgDiskUtilization > 1 {
		t.Errorf("disk utilization out of range: %v", st.AvgDiskUtilization)
	}
	// Light load should complete nearly everything: 3 × 20 tps × 10 s.
	if st.TotalTxns < 550 {
		t.Errorf("TotalTxns = %d, want ≈600", st.TotalTxns)
	}
}

func TestMaxMinFair(t *testing.T) {
	cases := []struct {
		demands  []float64
		capacity float64
		want     []float64
	}{
		{[]float64{10, 10, 10}, 60, []float64{10, 10, 10}},    // under-subscribed
		{[]float64{100, 100, 100}, 60, []float64{20, 20, 20}}, // equal split
		{[]float64{5, 100, 100}, 65, []float64{5, 30, 30}},    // small demand released
		{[]float64{0, 50}, 40, []float64{0, 40}},              // zero demand
		{nil, 100, []float64{}},                               // empty
		{[]float64{-5, 50}, 40, []float64{0, 40}},             // negative treated as zero
	}
	for i, tc := range cases {
		got := maxMinFair(tc.demands, tc.capacity)
		if len(got) != len(tc.want) {
			t.Errorf("case %d: len %d want %d", i, len(got), len(tc.want))
			continue
		}
		for j := range got {
			if math.Abs(got[j]-tc.want[j]) > 1e-9 {
				t.Errorf("case %d: grants = %v, want %v", i, got, tc.want)
				break
			}
		}
	}
}

// Property: max-min fairness never over-allocates and never grants more
// than demanded.
func TestPropertyMaxMinFair(t *testing.T) {
	f := func(raw []uint16, capRaw uint16) bool {
		demands := make([]float64, len(raw))
		for i, r := range raw {
			demands[i] = float64(r)
		}
		capacity := float64(capRaw)
		grants := maxMinFair(demands, capacity)
		var sum float64
		for i, g := range grants {
			if g < 0 || g > demands[i]+1e-9 {
				return false
			}
			sum += g
		}
		return sum <= capacity+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestHypervisorTaxReducesCapacity(t *testing.T) {
	// With a CPU-bound workload mix, raising the hypervisor tax must cut
	// hardware-virtualization throughput correspondingly.
	run := func(tax float64) float64 {
		cfg := DefaultHostConfig(HardwareVirtualization)
		cfg.HypervisorCPUTax = tax
		cfg.ContextSwitchTaxPerVM = 0
		h, err := NewHost(cfg)
		if err != nil {
			t.Fatal(err)
		}
		// CPU-heavy tiny-working-set tenants: disk is irrelevant.
		specs := make([]workload.Spec, 4)
		for i := range specs {
			specs[i] = workload.Spec{
				Name: fmt.Sprintf("cpu-%d", i), DataPages: 1000, WorkingSetPages: 100,
				TPS: 5000, ExtraCPUPerTxn: 2000,
			}
		}
		if err := h.AddWorkloads(specs, true); err != nil {
			t.Fatal(err)
		}
		st, err := h.Run(10*time.Second, 100*time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		return st.ThroughputTPS
	}
	none := run(0)
	taxed := run(0.5)
	if none <= 0 {
		t.Fatal("no throughput")
	}
	ratio := taxed / none
	if ratio < 0.4 || ratio > 0.6 {
		t.Errorf("50%% tax should halve CPU-bound throughput: ratio = %.2f", ratio)
	}
}
