package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"kairos"
	"kairos/internal/fleet"
)

// cmdWatch runs the event-driven re-consolidation loop over a directory of
// trace snapshots (CSV fleets as written by tracegen, lexicographic order):
// the first snapshot is the baseline the incumbent plan is solved against
// (or, with -resolve, the fleet an existing saved plan assumed), and every
// later snapshot is one observation window fed through the kairos.Fleet
// session. A re-solve runs only when drift crosses the threshold; each one
// prints a ReconsolidationEvent line.
func cmdWatch(args []string) error {
	fs := flag.NewFlagSet("watch", flag.ExitOnError)
	dir := fs.String("snapshots", "", "directory of CSV trace snapshots, one observation window per file (required)")
	spec := addSpecFlags(fs)
	solver := addSolverFlags(fs)
	threshold := fs.Float64("drift-threshold", 0.04, "relative drift (utilization delta or forecast CV(RMSE)) that triggers a re-solve")
	rearm := fs.Float64("rearm", 0, "hysteresis re-arm level (0 = half the threshold)")
	cooldown := fs.Int("cooldown", 1, "observation windows suppressed after a trigger")
	history := fs.Int("history", 2, "windows averaged into the rolling forecast the re-solve consumes")
	minWorkloads := fs.Int("min-workloads", 1, "distinct drifted workloads required to trigger")
	migWeight := fs.Float64("mig-weight", 0.05, "migration cost per average-working-set unit moved off its incumbent machine")
	maxMig := fs.Int("max-migrations", 0, "cap on units migrated per re-solve (0 = unlimited)")
	resolvePath := fs.String("resolve", "", "start from a plan saved with consolidate -save-plan instead of solving the first snapshot cold")
	savePlan := fs.String("save-plan", "", "write the final incumbent plan to this JSON file")
	verbose := fs.Bool("v", false, "print every window, not just triggers")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dir == "" {
		return fmt.Errorf("watch: -snapshots directory is required")
	}
	entries, err := os.ReadDir(*dir)
	if err != nil {
		return err
	}
	var files []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".csv") {
			files = append(files, filepath.Join(*dir, e.Name()))
		}
	}
	sort.Strings(files)
	if len(files) < 2 {
		return fmt.Errorf("watch: need a baseline plus at least one observation snapshot, found %d CSV files in %s", len(files), *dir)
	}
	dp, err := spec.diskProfile()
	if err != nil {
		return err
	}
	readSnapshot := func(path string) ([]kairos.Workload, int, error) {
		f, err := os.Open(path)
		if err != nil {
			return nil, 0, err
		}
		fl, err := fleet.ReadCSV(f, path)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return nil, 0, err
		}
		return fl.Workloads(*spec.ramScale), len(fl.Servers), nil
	}

	baseline, nServers, err := readSnapshot(files[0])
	if err != nil {
		return err
	}
	opt := solver.options()
	opt.SkipDirect = true // fleet-scale streams use the local-search path
	ropt := opt
	ropt.MigrationWeight = *migWeight
	ropt.MaxMigrations = *maxMig

	opts := []kairos.FleetOption{
		kairos.WithSolveOptions(opt),
		kairos.WithResolveOptions(ropt),
		kairos.WithDrift(kairos.DriftConfig{
			Threshold:    *threshold,
			Rearm:        *rearm,
			Cooldown:     *cooldown,
			History:      *history,
			MinWorkloads: *minWorkloads,
		}),
	}
	var seeded bool
	if *resolvePath != "" {
		inc, rerr := loadIncumbent(*resolvePath)
		if rerr != nil {
			return rerr
		}
		opts = append(opts, kairos.WithIncumbent(inc))
		seeded = true
		fmt.Printf("baseline %s: incumbent plan %s (K=%d)\n", files[0], *resolvePath, inc.K)
	}
	session, err := kairos.NewFleet(kairos.FleetSpec{
		Name:      filepath.Base(*dir),
		Workloads: baseline,
		Machines:  targetMachines(nServers, *spec.headroom),
		Disk:      dp,
	}, opts...)
	if err != nil {
		return err
	}
	if !seeded {
		plan, err := session.Consolidate(context.Background())
		if err != nil {
			return err
		}
		fmt.Printf("baseline %s: %d workloads -> %d machines (feasible=%v)\n",
			files[0], len(baseline), plan.K, plan.Feasible)
	}

	for _, path := range files[1:] {
		window, _, err := readSnapshot(path)
		if err != nil {
			return fmt.Errorf("watch: snapshot %s: %w", path, err)
		}
		ev, err := session.Observe(context.Background(), window)
		if err != nil {
			return fmt.Errorf("watch: snapshot %s: %w", path, err)
		}
		switch {
		case ev != nil:
			fmt.Printf("%s: %v\n", path, ev)
		case *verbose:
			fmt.Printf("%s: window %d, plan holds\n", path, session.Window()-1)
		}
	}
	final := session.Incumbent()
	fmt.Printf("watched %d windows: %d re-consolidations (final K=%d)\n",
		len(files)-1, len(session.Events()), final.K)
	if *savePlan != "" {
		if err := saveIncumbent(*savePlan, final); err != nil {
			return err
		}
		fmt.Printf("wrote final plan to %s\n", *savePlan)
	}
	return nil
}
