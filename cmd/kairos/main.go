// Command kairos is the command-line front end to the Kairos consolidation
// system. Subcommands cover the whole paper pipeline plus the deployable
// control plane:
//
//	kairos profile-disk   build the empirical disk model of the target hardware
//	kairos gauge          measure a DBMS working set by buffer-pool gauging
//	kairos consolidate    compute a consolidation plan for a fleet
//	kairos watch          event-driven re-consolidation over trace snapshots
//	kairos serve          long-running HTTP control plane (register/ingest/query)
//	kairos report         run the full Figure-7 style consolidation report
//
// Run `kairos <subcommand> -h` for per-command flags. Each subcommand
// lives in its own file (consolidate.go, watch.go, serve.go, ...), with
// the flag helpers they share in helpers.go.
package main

import (
	"fmt"
	"os"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "profile-disk":
		err = cmdProfileDisk(os.Args[2:])
	case "gauge":
		err = cmdGauge(os.Args[2:])
	case "consolidate":
		err = cmdConsolidate(os.Args[2:])
	case "watch":
		err = cmdWatch(os.Args[2:])
	case "serve":
		err = cmdServe(os.Args[2:])
	case "report":
		err = cmdReport(os.Args[2:])
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "kairos: unknown subcommand %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "kairos:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage: kairos <subcommand> [flags]

subcommands:
  profile-disk   build the empirical disk model (Figure 4)
  gauge          buffer-pool gauging demo on a simulated DBMS (Figure 2)
  consolidate    consolidate a fleet onto 12-core/96GB targets (Figure 7)
  watch          event-driven re-consolidation over a directory of trace snapshots
  serve          HTTP control plane: register fleets, stream windows, query plans
  report         consolidation report over all datasets
`)
}
