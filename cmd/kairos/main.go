// Command kairos is the command-line front end to the Kairos consolidation
// system. Subcommands cover the whole paper pipeline:
//
//	kairos profile-disk   build the empirical disk model of the target hardware
//	kairos gauge          measure a DBMS working set by buffer-pool gauging
//	kairos consolidate    compute a consolidation plan for a fleet
//	kairos report         run the full Figure-7 style consolidation report
//
// Run `kairos <subcommand> -h` for per-command flags.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"kairos"
	"kairos/internal/core"
	"kairos/internal/dbms"
	"kairos/internal/disk"
	"kairos/internal/fleet"
	"kairos/internal/model"
	"kairos/internal/workload"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "profile-disk":
		err = cmdProfileDisk(os.Args[2:])
	case "gauge":
		err = cmdGauge(os.Args[2:])
	case "consolidate":
		err = cmdConsolidate(os.Args[2:])
	case "watch":
		err = cmdWatch(os.Args[2:])
	case "report":
		err = cmdReport(os.Args[2:])
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "kairos: unknown subcommand %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "kairos:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage: kairos <subcommand> [flags]

subcommands:
  profile-disk   build the empirical disk model (Figure 4)
  gauge          buffer-pool gauging demo on a simulated DBMS (Figure 2)
  consolidate    consolidate a fleet onto 12-core/96GB targets (Figure 7)
  watch          event-driven re-consolidation over a directory of trace snapshots
  report         consolidation report over all datasets
`)
}

func cmdProfileDisk(args []string) error {
	fs := flag.NewFlagSet("profile-disk", flag.ExitOnError)
	quick := fs.Bool("quick", true, "use the reduced sweep")
	out := fs.String("o", "disk-profile.json", "output JSON path")
	if err := fs.Parse(args); err != nil {
		return err
	}
	pr := model.DefaultProfiler()
	if *quick {
		pr = kairos.QuickProfiler()
	}
	fmt.Printf("profiling %q (%d x %d sweep)...\n", pr.ConfigName, len(pr.WSPointsMB), len(pr.RatePoints))
	dp, err := pr.Run()
	if err != nil {
		return err
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := dp.Save(f); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d points, saturation envelope=%v)\n", *out, len(dp.Points), dp.HasEnvelope)
	return nil
}

func cmdGauge(args []string) error {
	fs := flag.NewFlagSet("gauge", flag.ExitOnError)
	poolMB := fs.Int64("pool", 953, "buffer pool size (MB)")
	warehouses := fs.Int("warehouses", 2, "TPC-C scale of the hosted workload")
	tps := fs.Float64("tps", 100, "workload transaction rate")
	window := fs.Duration("window", 5*time.Second, "observation window per probe step")
	if err := fs.Parse(args); err != nil {
		return err
	}

	d, err := disk.New(disk.Server7200SATA())
	if err != nil {
		return err
	}
	cfg := dbms.DefaultConfig()
	cfg.BufferPoolBytes = *poolMB << 20
	in, err := dbms.NewInstance(cfg, d, 0)
	if err != nil {
		return err
	}
	spec := workload.TPCC(*warehouses, *tps)
	gen, err := workload.Provision(in, spec, true)
	if err != nil {
		return err
	}
	gc := kairos.GaugeConfig{
		ProbeTable: "kairos_probe", InitialGrowPages: 256, MaxStealFraction: 0.95,
		Window: *window, ScansPerWindow: 5, ReadIncreaseThreshold: 20,
		Tick: 100 * time.Millisecond,
	}
	fmt.Printf("pool %d MB, hidden working set %d MB; gauging...\n",
		*poolMB, spec.WorkingSetBytes()>>20)
	res, err := kairos.GaugeWorkingSet(in, []*workload.Generator{gen}, gc)
	if err != nil {
		return err
	}
	fmt.Println("stolen_MB  reads_per_sec")
	for _, pt := range res.Curve {
		fmt.Printf("%9.0f  %13.1f\n", float64(pt.StolenBytes)/1e6, pt.ReadsPerSec)
	}
	fmt.Printf("detected=%v  gauged working set = %d MB (true %d MB)  elapsed %v\n",
		res.Detected, res.WorkingSetBytes>>20, spec.WorkingSetBytes()>>20, res.Elapsed)
	return nil
}

func pickFleet(name string) (fleet.Fleet, error) {
	switch strings.ToLower(name) {
	case "internal":
		return fleet.Generate(fleet.Internal), nil
	case "wikia":
		return fleet.Generate(fleet.Wikia), nil
	case "wikipedia":
		return fleet.Generate(fleet.Wikipedia), nil
	case "secondlife":
		return fleet.Generate(fleet.SecondLife), nil
	case "all":
		return fleet.All(), nil
	default:
		return fleet.Fleet{}, fmt.Errorf("unknown dataset %q", name)
	}
}

func loadProfile(path string) (*model.DiskProfile, error) {
	if path == "" {
		return nil, nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return model.LoadProfile(f)
}

func cmdConsolidate(args []string) error {
	fs := flag.NewFlagSet("consolidate", flag.ExitOnError)
	dataset := fs.String("dataset", "internal", "internal|wikia|wikipedia|secondlife|all")
	traces := fs.String("traces", "", "consolidate recorded traces from this CSV file instead of a built-in dataset")
	profilePath := fs.String("profile", "", "disk profile JSON from profile-disk (omit to skip the disk constraint)")
	ramScale := fs.Float64("ram-scale", 0.7, "RAM scaling for ungauged statistics")
	headroom := fs.Float64("headroom", 0.05, "per-machine safety margin")
	verbose := fs.Bool("v", false, "print the full placement")
	parallel := fs.Int("parallel", 1, "solver worker goroutines (0 = one per CPU, 1 = sequential)")
	bucket := fs.Int("bucket", 0, "coarse-pricing bucket width in time steps for the move screen (0 = default T/16, negative = screen off); plans are identical for every setting")
	shards := fs.Int("shards", 0, "split the fleet into this many correlation-aware shards solved concurrently (0 = single global solve)")
	savePlan := fs.String("save-plan", "", "write the computed plan to this JSON file for later -resolve runs")
	resolvePath := fs.String("resolve", "", "warm-start from a plan saved with -save-plan instead of solving cold (rolling re-consolidation)")
	migWeight := fs.Float64("mig-weight", 0.05, "with -resolve: migration cost per average-working-set unit moved off its incumbent machine (0 = free migrations)")
	maxMig := fs.Int("max-migrations", 0, "with -resolve: cap on units moved off their incumbent machine (0 = unlimited)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *resolvePath != "" && *shards > 0 {
		return fmt.Errorf("-resolve and -shards are mutually exclusive (warm re-solves polish globally)")
	}
	var f fleet.Fleet
	var err error
	if *traces != "" {
		file, ferr := os.Open(*traces)
		if ferr != nil {
			return ferr
		}
		f, err = fleet.ReadCSV(file, *traces)
		file.Close()
	} else {
		f, err = pickFleet(*dataset)
	}
	if err != nil {
		return err
	}
	dp, err := loadProfile(*profilePath)
	if err != nil {
		return err
	}
	wls := f.Workloads(*ramScale)
	machines := make([]core.Machine, len(f.Servers))
	for i := range machines {
		machines[i] = fleet.TargetMachine(fmt.Sprintf("target-%02d", i), 50e6, *headroom)
	}
	opt := kairos.DefaultOptions()
	switch {
	case *parallel == 0:
		opt = kairos.ParallelOptions()
	case *parallel > 1:
		opt.Workers = *parallel
	}
	opt.BucketWidth = *bucket
	var plan *kairos.Plan
	switch {
	case *resolvePath != "":
		inc, rerr := loadIncumbent(*resolvePath)
		if rerr != nil {
			return rerr
		}
		opt.MigrationWeight = *migWeight
		opt.MaxMigrations = *maxMig
		plan, err = kairos.Reconsolidate(wls, machines, dp, inc, opt)
	case *shards > 0:
		plan, err = kairos.ConsolidateFleet(wls, machines, dp,
			kairos.ShardOptions{Shards: *shards, Options: opt})
	default:
		plan, err = kairos.Consolidate(wls, machines, dp, opt)
	}
	if err != nil {
		return err
	}
	fmt.Printf("%s: %d servers -> %d machines (%.1f:1), feasible=%v, solved in %v\n",
		f.Name, len(f.Servers), plan.K, plan.ConsolidationRatio(len(f.Servers)),
		plan.Feasible, plan.Elapsed.Round(time.Millisecond))
	if *resolvePath != "" {
		fmt.Printf("warm re-solve: %d/%d units migrated (migration cost %.3f, %d fevals)\n",
			plan.Migrated, len(plan.Assign), plan.MigrationCost, plan.Fevals)
	}
	if *savePlan != "" {
		if err := writeIncumbent(*savePlan, plan); err != nil {
			return err
		}
		fmt.Printf("wrote plan to %s (re-solve later with -resolve %s)\n", *savePlan, *savePlan)
	}
	if *verbose {
		fmt.Print(plan)
	}
	return nil
}

// cmdWatch runs the event-driven re-consolidation loop over a directory of
// trace snapshots (CSV fleets as written by tracegen, lexicographic order):
// the first snapshot is the baseline the incumbent plan is solved against
// (or, with -resolve, the fleet an existing saved plan assumed), and every
// later snapshot is one observation window fed to the drift detector. A
// re-solve runs only when drift crosses the threshold; each one prints a
// ReconsolidationEvent line.
func cmdWatch(args []string) error {
	fs := flag.NewFlagSet("watch", flag.ExitOnError)
	dir := fs.String("snapshots", "", "directory of CSV trace snapshots, one observation window per file (required)")
	profilePath := fs.String("profile", "", "disk profile JSON from profile-disk (omit to skip the disk constraint)")
	ramScale := fs.Float64("ram-scale", 0.7, "RAM scaling for ungauged statistics")
	headroom := fs.Float64("headroom", 0.05, "per-machine safety margin")
	threshold := fs.Float64("drift-threshold", 0.04, "relative drift (utilization delta or forecast CV(RMSE)) that triggers a re-solve")
	rearm := fs.Float64("rearm", 0, "hysteresis re-arm level (0 = half the threshold)")
	cooldown := fs.Int("cooldown", 1, "observation windows suppressed after a trigger")
	history := fs.Int("history", 2, "windows averaged into the rolling forecast the re-solve consumes")
	minWorkloads := fs.Int("min-workloads", 1, "distinct drifted workloads required to trigger")
	migWeight := fs.Float64("mig-weight", 0.05, "migration cost per average-working-set unit moved off its incumbent machine")
	maxMig := fs.Int("max-migrations", 0, "cap on units migrated per re-solve (0 = unlimited)")
	resolvePath := fs.String("resolve", "", "start from a plan saved with consolidate -save-plan instead of solving the first snapshot cold")
	savePlan := fs.String("save-plan", "", "write the final incumbent plan to this JSON file")
	parallel := fs.Int("parallel", 1, "solver worker goroutines (0 = one per CPU, 1 = sequential)")
	verbose := fs.Bool("v", false, "print every window, not just triggers")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dir == "" {
		return fmt.Errorf("watch: -snapshots directory is required")
	}
	entries, err := os.ReadDir(*dir)
	if err != nil {
		return err
	}
	var files []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".csv") {
			files = append(files, filepath.Join(*dir, e.Name()))
		}
	}
	sort.Strings(files)
	if len(files) < 2 {
		return fmt.Errorf("watch: need a baseline plus at least one observation snapshot, found %d CSV files in %s", len(files), *dir)
	}
	dp, err := loadProfile(*profilePath)
	if err != nil {
		return err
	}
	readSnapshot := func(path string) ([]kairos.Workload, int, error) {
		f, err := os.Open(path)
		if err != nil {
			return nil, 0, err
		}
		defer f.Close()
		fl, err := fleet.ReadCSV(f, path)
		if err != nil {
			return nil, 0, err
		}
		return fl.Workloads(*ramScale), len(fl.Servers), nil
	}

	baseline, nServers, err := readSnapshot(files[0])
	if err != nil {
		return err
	}
	machines := make([]core.Machine, nServers)
	for i := range machines {
		machines[i] = fleet.TargetMachine(fmt.Sprintf("target-%02d", i), 50e6, *headroom)
	}
	opt := kairos.DefaultOptions()
	switch {
	case *parallel == 0:
		opt = kairos.ParallelOptions()
	case *parallel > 1:
		opt.Workers = *parallel
	}

	var inc *kairos.Incumbent
	if *resolvePath != "" {
		if inc, err = loadIncumbent(*resolvePath); err != nil {
			return err
		}
		fmt.Printf("baseline %s: incumbent plan %s (K=%d)\n", files[0], *resolvePath, inc.K)
	} else {
		solveOpt := opt
		solveOpt.SkipDirect = true // fleet-scale streams use the local-search path
		plan, err := kairos.Consolidate(baseline, machines, dp, solveOpt)
		if err != nil {
			return err
		}
		inc = plan.Incumbent()
		fmt.Printf("baseline %s: %d workloads -> %d machines (feasible=%v)\n",
			files[0], len(baseline), plan.K, plan.Feasible)
	}

	wopt := kairos.DefaultWatchOptions()
	wopt.Drift.Threshold = *threshold
	wopt.Drift.Rearm = *rearm
	wopt.Drift.Cooldown = *cooldown
	wopt.Drift.History = *history
	wopt.Drift.MinWorkloads = *minWorkloads
	wopt.Resolve = opt
	wopt.Resolve.SkipDirect = true
	wopt.Resolve.MigrationWeight = *migWeight
	wopt.Resolve.MaxMigrations = *maxMig
	ar, err := kairos.NewAutoReconsolidator(inc, baseline, machines, dp, wopt)
	if err != nil {
		return err
	}
	triggers := 0
	for _, path := range files[1:] {
		window, _, err := readSnapshot(path)
		if err != nil {
			return fmt.Errorf("watch: snapshot %s: %w", path, err)
		}
		ev, err := ar.Observe(window)
		if err != nil {
			return fmt.Errorf("watch: snapshot %s: %w", path, err)
		}
		switch {
		case ev != nil:
			triggers++
			fmt.Printf("%s: %v\n", path, ev)
		case *verbose:
			fmt.Printf("%s: window %d, plan holds\n", path, ar.Window()-1)
		}
	}
	fmt.Printf("watched %d windows: %d re-consolidations (final K=%d)\n",
		len(files)-1, triggers, ar.Incumbent().K)
	if *savePlan != "" {
		f, err := os.Create(*savePlan)
		if err != nil {
			return err
		}
		if err := ar.Incumbent().Save(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote final plan to %s\n", *savePlan)
	}
	return nil
}

// loadIncumbent reads a plan saved with -save-plan.
func loadIncumbent(path string) (*kairos.Incumbent, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return core.LoadIncumbent(f)
}

// writeIncumbent saves a computed plan for later -resolve runs.
func writeIncumbent(path string, plan *kairos.Plan) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := plan.Incumbent().Save(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func cmdReport(args []string) error {
	fs := flag.NewFlagSet("report", flag.ExitOnError)
	ramScale := fs.Float64("ram-scale", 0.7, "RAM scaling for ungauged statistics")
	if err := fs.Parse(args); err != nil {
		return err
	}
	fmt.Printf("%-12s %8s %8s %8s %9s\n", "dataset", "servers", "kairos", "ideal", "ratio")
	names := []string{"internal", "wikia", "wikipedia", "secondlife", "all"}
	for _, name := range names {
		f, err := pickFleet(name)
		if err != nil {
			return err
		}
		wls := f.Workloads(*ramScale)
		machines := make([]core.Machine, len(f.Servers))
		for i := range machines {
			machines[i] = fleet.TargetMachine(fmt.Sprintf("t%d", i), 50e6, 0.05)
		}
		p := &core.Problem{Workloads: wls, Machines: machines}
		sol, err := core.Solve(p, core.DefaultSolveOptions())
		if err != nil {
			return err
		}
		ev, err := core.NewEvaluator(p)
		if err != nil {
			return err
		}
		fmt.Printf("%-12s %8d %8d %8d %8.1f:1\n",
			f.Name, len(f.Servers), sol.K, ev.FractionalLowerBound(),
			sol.ConsolidationRatio(len(f.Servers)))
	}
	return nil
}
