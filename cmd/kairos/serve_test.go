package main

import (
	"net/http"
	"testing"
	"time"
)

// TestNewHTTPServerHardening pins the daemon's connection hygiene: header
// reads and idle keep-alives are bounded (no ReadTimeout — window bodies
// may stream slowly; the handler bounds their size instead).
func TestNewHTTPServerHardening(t *testing.T) {
	h := http.NewServeMux()
	srv := newHTTPServer(":0", h)
	if srv.ReadHeaderTimeout <= 0 || srv.ReadHeaderTimeout > time.Minute {
		t.Errorf("ReadHeaderTimeout = %v, want a bounded positive value", srv.ReadHeaderTimeout)
	}
	if srv.IdleTimeout <= 0 {
		t.Errorf("IdleTimeout = %v, want positive", srv.IdleTimeout)
	}
	if srv.ReadTimeout != 0 {
		t.Errorf("ReadTimeout = %v, want 0 (bodies are size-bounded, not time-bounded)", srv.ReadTimeout)
	}
	if srv.Handler == nil || srv.Addr != ":0" {
		t.Errorf("server = %+v, want handler and addr wired through", srv)
	}
}
