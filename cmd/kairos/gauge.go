package main

import (
	"flag"
	"fmt"
	"time"

	"kairos"
	"kairos/internal/dbms"
	"kairos/internal/disk"
	"kairos/internal/workload"
)

// cmdGauge runs the buffer-pool gauging demo on a simulated DBMS (paper
// Figure 2): measure a hidden working set without touching configuration.
func cmdGauge(args []string) error {
	fs := flag.NewFlagSet("gauge", flag.ExitOnError)
	poolMB := fs.Int64("pool", 953, "buffer pool size (MB)")
	warehouses := fs.Int("warehouses", 2, "TPC-C scale of the hosted workload")
	tps := fs.Float64("tps", 100, "workload transaction rate")
	window := fs.Duration("window", 5*time.Second, "observation window per probe step")
	if err := fs.Parse(args); err != nil {
		return err
	}

	d, err := disk.New(disk.Server7200SATA())
	if err != nil {
		return err
	}
	cfg := dbms.DefaultConfig()
	cfg.BufferPoolBytes = *poolMB << 20
	in, err := dbms.NewInstance(cfg, d, 0)
	if err != nil {
		return err
	}
	spec := workload.TPCC(*warehouses, *tps)
	gen, err := workload.Provision(in, spec, true)
	if err != nil {
		return err
	}
	gc := kairos.GaugeConfig{
		ProbeTable: "kairos_probe", InitialGrowPages: 256, MaxStealFraction: 0.95,
		Window: *window, ScansPerWindow: 5, ReadIncreaseThreshold: 20,
		Tick: 100 * time.Millisecond,
	}
	fmt.Printf("pool %d MB, hidden working set %d MB; gauging...\n",
		*poolMB, spec.WorkingSetBytes()>>20)
	res, err := kairos.GaugeWorkingSet(in, []*workload.Generator{gen}, gc)
	if err != nil {
		return err
	}
	fmt.Println("stolen_MB  reads_per_sec")
	for _, pt := range res.Curve {
		fmt.Printf("%9.0f  %13.1f\n", float64(pt.StolenBytes)/1e6, pt.ReadsPerSec)
	}
	fmt.Printf("detected=%v  gauged working set = %d MB (true %d MB)  elapsed %v\n",
		res.Detected, res.WorkingSetBytes>>20, spec.WorkingSetBytes()>>20, res.Elapsed)
	return nil
}
