package main

import (
	"context"
	"flag"
	"fmt"

	"kairos/internal/core"
	"kairos/internal/fleet"
)

// cmdReport prints the Figure-7 style consolidation table over every
// built-in dataset.
func cmdReport(args []string) error {
	fs := flag.NewFlagSet("report", flag.ExitOnError)
	ramScale := fs.Float64("ram-scale", 0.7, "RAM scaling for ungauged statistics")
	if err := fs.Parse(args); err != nil {
		return err
	}
	fmt.Printf("%-12s %8s %8s %8s %9s\n", "dataset", "servers", "kairos", "ideal", "ratio")
	names := []string{"internal", "wikia", "wikipedia", "secondlife", "all"}
	for _, name := range names {
		f, err := pickFleet(name)
		if err != nil {
			return err
		}
		wls := f.Workloads(*ramScale)
		machines := make([]core.Machine, len(f.Servers))
		for i := range machines {
			machines[i] = fleet.TargetMachine(fmt.Sprintf("t%d", i), 50e6, 0.05)
		}
		p := &core.Problem{Workloads: wls, Machines: machines}
		sol, err := core.Solve(context.Background(), p, core.DefaultSolveOptions())
		if err != nil {
			return err
		}
		ev, err := core.NewEvaluator(p)
		if err != nil {
			return err
		}
		fmt.Printf("%-12s %8d %8d %8d %8.1f:1\n",
			f.Name, len(f.Servers), sol.K, ev.FractionalLowerBound(),
			sol.ConsolidationRatio(len(f.Servers)))
	}
	return nil
}
