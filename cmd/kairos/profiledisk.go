package main

import (
	"flag"
	"fmt"
	"os"

	"kairos"
	"kairos/internal/model"
)

// cmdProfileDisk builds the empirical disk model of the target hardware
// (paper Figure 4) and writes it as JSON for consolidate/watch/serve.
func cmdProfileDisk(args []string) error {
	fs := flag.NewFlagSet("profile-disk", flag.ExitOnError)
	quick := fs.Bool("quick", true, "use the reduced sweep")
	out := fs.String("o", "disk-profile.json", "output JSON path")
	if err := fs.Parse(args); err != nil {
		return err
	}
	pr := model.DefaultProfiler()
	if *quick {
		pr = kairos.QuickProfiler()
	}
	fmt.Printf("profiling %q (%d x %d sweep)...\n", pr.ConfigName, len(pr.WSPointsMB), len(pr.RatePoints))
	dp, err := pr.Run()
	if err != nil {
		return err
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	if err := dp.Save(f); err != nil {
		f.Close() //kairoslint:allow errflow: already failing with the save error; a close error would mask it
		return err
	}
	// An unchecked Close on a written file can silently drop the profile:
	// the kernel reports deferred write errors here.
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d points, saturation envelope=%v)\n", *out, len(dp.Points), dp.HasEnvelope)
	return nil
}
