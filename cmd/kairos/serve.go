package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"kairos/internal/journal"
	"kairos/internal/server"
)

// newHTTPServer builds the daemon's http.Server with its hardening
// timeouts: ReadHeaderTimeout bounds slow-loris header dribbling and
// IdleTimeout reaps abandoned keep-alive connections. No ReadTimeout —
// window bodies from slow collectors may legitimately stream for a
// while (the body size itself is bounded by the handler).
func newHTTPServer(addr string, h http.Handler) *http.Server {
	return &http.Server{
		Addr:              addr,
		Handler:           h,
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
}

// cmdServe runs the long-running control plane: an HTTP daemon exposing
// the /v1/ fleet API (register fleets, stream observation windows from
// concurrent collectors, query plans and re-consolidation events) plus
// Prometheus-text /metrics. One reconcile goroutine runs per registered
// fleet; SIGINT/SIGTERM shut the daemon down gracefully, draining
// in-flight ingests before exiting. With -state-dir the daemon is
// crash-safe: every mutation is journaled before it is acknowledged,
// and a restart replays the journal to resume exactly where the crashed
// process stopped.
func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", ":8080", "listen address")
	quiet := fs.Bool("q", false, "suppress per-event logging")
	grace := fs.Duration("grace", 10*time.Second, "graceful-shutdown drain timeout")
	stateDir := fs.String("state-dir", "", "directory for the durability journal (empty = in-memory only)")
	fsync := fs.String("fsync", "always", "journal fsync policy: always, interval, none")
	fsyncEvery := fs.Duration("fsync-every", 50*time.Millisecond, "flush period for -fsync=interval")
	snapEvery := fs.Int("snapshot-every", 256, "windows between journal-compacting snapshots")
	if err := fs.Parse(args); err != nil {
		return err
	}
	logf := log.New(os.Stderr, "kairos: ", log.LstdFlags).Printf
	if *quiet {
		logf = nil
	}
	sync, err := journal.ParseSyncPolicy(*fsync)
	if err != nil {
		return err
	}
	cp, err := server.Open(server.Config{
		Logf:          logf,
		StateDir:      *stateDir,
		Journal:       journal.Options{Sync: sync, SyncEvery: *fsyncEvery},
		SnapshotEvery: *snapEvery,
	})
	if err != nil {
		return err
	}
	httpSrv := newHTTPServer(*addr, cp.Handler())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	durable := "in-memory"
	if *stateDir != "" {
		durable = fmt.Sprintf("journaling to %s (fsync=%s)", *stateDir, *fsync)
	}
	fmt.Fprintf(os.Stderr, "kairos: serving fleet API on %s, %s (POST /v1/fleets to register)\n", *addr, durable)

	select {
	case err := <-errc:
		if closeErr := cp.Close(); err == nil {
			err = closeErr
		}
		return err
	case <-ctx.Done():
	}
	fmt.Fprintln(os.Stderr, "kairos: shutting down")
	sctx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	// Close the control plane first: it cancels every reconcile loop's
	// context, which aborts in-flight solves, so the HTTP drain below can
	// finish within the grace window instead of waiting out a multi-second
	// re-solve. Aborted ingests are answered 503 before their connections
	// close.
	err = cp.Close()
	if shutErr := httpSrv.Shutdown(sctx); err == nil {
		err = shutErr
	}
	if errors.Is(err, http.ErrServerClosed) {
		err = nil
	}
	return err
}
