package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"kairos/internal/server"
)

// cmdServe runs the long-running control plane: an HTTP daemon exposing
// the /v1/ fleet API (register fleets, stream observation windows from
// concurrent collectors, query plans and re-consolidation events) plus
// Prometheus-text /metrics. One reconcile goroutine runs per registered
// fleet; SIGINT/SIGTERM shut the daemon down gracefully, draining
// in-flight ingests before exiting.
func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", ":8080", "listen address")
	quiet := fs.Bool("q", false, "suppress per-event logging")
	grace := fs.Duration("grace", 10*time.Second, "graceful-shutdown drain timeout")
	if err := fs.Parse(args); err != nil {
		return err
	}
	logf := log.New(os.Stderr, "kairos: ", log.LstdFlags).Printf
	if *quiet {
		logf = nil
	}
	cp := server.New(logf)
	httpSrv := &http.Server{Addr: *addr, Handler: cp.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "kairos: serving fleet API on %s (POST /v1/fleets to register)\n", *addr)

	select {
	case err := <-errc:
		if closeErr := cp.Close(); err == nil {
			err = closeErr
		}
		return err
	case <-ctx.Done():
	}
	fmt.Fprintln(os.Stderr, "kairos: shutting down")
	sctx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	// Close the control plane first: it cancels every reconcile loop's
	// context, which aborts in-flight solves, so the HTTP drain below can
	// finish within the grace window instead of waiting out a multi-second
	// re-solve. Aborted ingests are answered 503 before their connections
	// close.
	err := cp.Close()
	if shutErr := httpSrv.Shutdown(sctx); err == nil {
		err = shutErr
	}
	if errors.Is(err, http.ErrServerClosed) {
		err = nil
	}
	return err
}
