package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"kairos"
	"kairos/internal/fleet"
)

// cmdConsolidate computes a consolidation plan for a built-in dataset or
// a recorded trace CSV, through the kairos.Fleet session API: cold solve,
// sharded fleet solve (-shards), or warm re-solve from a saved plan
// (-resolve).
func cmdConsolidate(args []string) error {
	fs := flag.NewFlagSet("consolidate", flag.ExitOnError)
	dataset := fs.String("dataset", "internal", "internal|wikia|wikipedia|secondlife|all")
	traces := fs.String("traces", "", "consolidate recorded traces from this CSV file instead of a built-in dataset")
	spec := addSpecFlags(fs)
	solver := addSolverFlags(fs)
	verbose := fs.Bool("v", false, "print the full placement")
	shards := fs.Int("shards", 0, "split the fleet into this many correlation-aware shards solved concurrently (0 = single global solve)")
	savePlan := fs.String("save-plan", "", "write the computed plan to this JSON file for later -resolve runs")
	resolvePath := fs.String("resolve", "", "warm-start from a plan saved with -save-plan instead of solving cold (rolling re-consolidation)")
	migWeight := fs.Float64("mig-weight", 0.05, "with -resolve: migration cost per average-working-set unit moved off its incumbent machine (0 = free migrations)")
	maxMig := fs.Int("max-migrations", 0, "with -resolve: cap on units moved off their incumbent machine (0 = unlimited)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *resolvePath != "" && *shards > 0 {
		return fmt.Errorf("-resolve and -shards are mutually exclusive (warm re-solves polish globally)")
	}
	var f fleet.Fleet
	var err error
	if *traces != "" {
		file, ferr := os.Open(*traces)
		if ferr != nil {
			return ferr
		}
		f, err = fleet.ReadCSV(file, *traces)
		if cerr := file.Close(); err == nil {
			err = cerr
		}
	} else {
		f, err = pickFleet(*dataset)
	}
	if err != nil {
		return err
	}
	dp, err := spec.diskProfile()
	if err != nil {
		return err
	}
	opt := solver.options()
	fspec := kairos.FleetSpec{
		Name:      f.Name,
		Workloads: f.Workloads(*spec.ramScale),
		Machines:  targetMachines(len(f.Servers), *spec.headroom),
		Disk:      dp,
	}
	opts := []kairos.FleetOption{kairos.WithSolveOptions(opt)}
	switch {
	case *resolvePath != "":
		inc, rerr := loadIncumbent(*resolvePath)
		if rerr != nil {
			return rerr
		}
		ropt := opt
		ropt.MigrationWeight = *migWeight
		ropt.MaxMigrations = *maxMig
		opts = append(opts, kairos.WithIncumbent(inc), kairos.WithResolveOptions(ropt))
	case *shards > 0:
		opts = append(opts, kairos.WithSharding(kairos.ShardOptions{Shards: *shards, Options: opt}))
	}
	session, err := kairos.NewFleet(fspec, opts...)
	if err != nil {
		return err
	}
	plan, err := session.Consolidate(context.Background())
	if err != nil {
		return err
	}
	fmt.Printf("%s: %d servers -> %d machines (%.1f:1), feasible=%v, solved in %v\n",
		f.Name, len(f.Servers), plan.K, plan.ConsolidationRatio(len(f.Servers)),
		plan.Feasible, plan.Elapsed.Round(time.Millisecond))
	if *resolvePath != "" {
		fmt.Printf("warm re-solve: %d/%d units migrated (migration cost %.3f, %d fevals)\n",
			plan.Migrated, len(plan.Assign), plan.MigrationCost, plan.Fevals)
	}
	if *savePlan != "" {
		if err := saveIncumbent(*savePlan, plan.Incumbent()); err != nil {
			return err
		}
		fmt.Printf("wrote plan to %s (re-solve later with -resolve %s)\n", *savePlan, *savePlan)
	}
	if *verbose {
		fmt.Print(plan)
	}
	return nil
}
