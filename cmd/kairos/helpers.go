package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"kairos"
	"kairos/internal/core"
	"kairos/internal/fleet"
	"kairos/internal/model"
)

// pickFleet resolves a dataset name to its generated trace fleet.
func pickFleet(name string) (fleet.Fleet, error) {
	switch strings.ToLower(name) {
	case "internal":
		return fleet.Generate(fleet.Internal), nil
	case "wikia":
		return fleet.Generate(fleet.Wikia), nil
	case "wikipedia":
		return fleet.Generate(fleet.Wikipedia), nil
	case "secondlife":
		return fleet.Generate(fleet.SecondLife), nil
	case "all":
		return fleet.All(), nil
	default:
		return fleet.Fleet{}, fmt.Errorf("unknown dataset %q", name)
	}
}

// loadProfile reads a disk profile written by `kairos profile-disk`
// (empty path = no disk constraint).
func loadProfile(path string) (*model.DiskProfile, error) {
	if path == "" {
		return nil, nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	dp, err := model.LoadProfile(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return nil, err
	}
	return dp, nil
}

// loadIncumbent reads a plan saved with -save-plan.
func loadIncumbent(path string) (*kairos.Incumbent, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	inc, err := core.LoadIncumbent(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return nil, err
	}
	return inc, nil
}

// saveIncumbent writes an incumbent plan for later -resolve runs.
func saveIncumbent(path string, inc *kairos.Incumbent) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := inc.Save(f); err != nil {
		f.Close() //kairoslint:allow errflow: already failing with the save error; a close error would mask it
		return err
	}
	return f.Close()
}

// targetMachines builds n copies of the standard 12-core/96GB target.
func targetMachines(n int, headroom float64) []core.Machine {
	out := make([]core.Machine, n)
	for i := range out {
		out[i] = fleet.TargetMachine(fmt.Sprintf("target-%02d", i), 50e6, headroom)
	}
	return out
}

// solverFlags are the solver knobs shared by consolidate and watch.
type solverFlags struct {
	parallel *int
	bucket   *int
}

// addSolverFlags registers the shared solver flags on fs.
func addSolverFlags(fs *flag.FlagSet) *solverFlags {
	return &solverFlags{
		parallel: fs.Int("parallel", 1, "solver worker goroutines (0 = one per CPU, 1 = sequential)"),
		bucket: fs.Int("bucket", 0, "coarse-pricing bucket width in time steps for the move screen "+
			"(0 = default T/16, negative = screen off); plans are identical for every setting"),
	}
}

// options resolves the flags into solve options.
func (sf *solverFlags) options() kairos.SolveOptions {
	opt := kairos.DefaultOptions()
	switch {
	case *sf.parallel == 0:
		opt = kairos.ParallelOptions()
	case *sf.parallel > 1:
		opt.Workers = *sf.parallel
	}
	opt.BucketWidth = *sf.bucket
	return opt
}

// specFlags are the fleet-description knobs shared by consolidate and
// watch: disk profile, RAM scaling and per-machine headroom.
type specFlags struct {
	profile  *string
	ramScale *float64
	headroom *float64
}

// addSpecFlags registers the shared fleet-spec flags on fs.
func addSpecFlags(fs *flag.FlagSet) *specFlags {
	return &specFlags{
		profile:  fs.String("profile", "", "disk profile JSON from profile-disk (omit to skip the disk constraint)"),
		ramScale: fs.Float64("ram-scale", 0.7, "RAM scaling for ungauged statistics"),
		headroom: fs.Float64("headroom", 0.05, "per-machine safety margin"),
	}
}

// diskProfile loads the -profile flag's model.
func (sp *specFlags) diskProfile() (*model.DiskProfile, error) {
	return loadProfile(*sp.profile)
}
