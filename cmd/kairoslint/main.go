// Command kairoslint is the repo's static-analysis multichecker: it runs
// the internal/lint analyzer suite — the per-package checks (errflow,
// floatdet, hotalloc, lockguard, wirejson) and the call-graph-backed
// whole-program checks (atomicmix, ctxflow, hotcall, leakcheck,
// lockorder, unitsafe, walorder) — over the named package patterns and
// exits non-zero on any finding. Run it from the module root:
//
//	go run ./cmd/kairoslint ./...
//
// `make lint` and the CI lint job do exactly that. Suppress a single
// finding with a //kairoslint:allow <analyzer>: <reason> comment on its
// line — the reason is mandatory, a waiver without one is itself a
// finding. The annotation conventions the analyzers enforce are
// documented in CONTRIBUTING.md.
//
// -json emits findings as a JSON array ({analyzer, file, line, col,
// message}) for tooling; CI's problem matcher consumes the default
// text form. -budget fails the run (exit 3) when load + analysis
// exceed the given wall-clock duration, keeping the lint gate's latency
// a tested property.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	lint "kairos/internal/lint"
	"kairos/internal/lint/driver"
)

// jsonFinding is the -json wire form of one diagnostic.
type jsonFinding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	verbose := flag.Bool("v", false, "report load/analysis wall-clock to stderr")
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array instead of text lines")
	budget := flag.Duration("budget", 0, "fail (exit 3) if load+analysis exceed this wall-clock duration")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: kairoslint [flags] [packages]\n\nAnalyzers:\n")
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(os.Stderr, "  %-10s %s\n", a.Name, a.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()
	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	start := time.Now()
	pkgs, err := driver.Load(patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "kairoslint:", err)
		os.Exit(2)
	}
	loaded := time.Now()
	diags, err := driver.Run(pkgs, lint.Analyzers())
	if err != nil {
		fmt.Fprintln(os.Stderr, "kairoslint:", err)
		os.Exit(2)
	}
	elapsed := time.Since(start)
	if *verbose {
		fmt.Fprintf(os.Stderr, "kairoslint: %d packages loaded in %v, analyzed in %v (total %v)\n",
			len(pkgs),
			loaded.Sub(start).Round(time.Millisecond),
			time.Since(loaded).Round(time.Millisecond),
			elapsed.Round(time.Millisecond))
	}
	if *jsonOut {
		findings := make([]jsonFinding, 0, len(diags))
		for _, d := range diags {
			findings = append(findings, jsonFinding{
				Analyzer: d.Analyzer,
				File:     d.Pos.Filename,
				Line:     d.Pos.Line,
				Col:      d.Pos.Column,
				Message:  d.Message,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintln(os.Stderr, "kairoslint:", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if *budget > 0 && elapsed > *budget {
		fmt.Fprintf(os.Stderr, "kairoslint: wall clock %v exceeded budget %v\n",
			elapsed.Round(time.Millisecond), *budget)
		os.Exit(3)
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}
