// Command kairoslint is the repo's static-analysis multichecker: it runs
// the internal/lint analyzer suite — the per-package checks (floatdet,
// hotalloc, lockguard, wirejson, ctxflow) and the call-graph-backed
// whole-program checks (lockorder, hotcall, unitsafe) — over the named
// package patterns and exits non-zero on any finding. Run it from the
// module root:
//
//	go run ./cmd/kairoslint ./...
//
// `make lint` and the CI lint job do exactly that. Suppress a single
// finding with a //kairoslint:allow <analyzer>: <reason> comment on its
// line — the reason is mandatory, a waiver without one is itself a
// finding. The annotation conventions the analyzers enforce are
// documented in CONTRIBUTING.md.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	lint "kairos/internal/lint"
	"kairos/internal/lint/driver"
)

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	verbose := flag.Bool("v", false, "report load/analysis wall-clock to stderr")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: kairoslint [packages]\n\nAnalyzers:\n")
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(os.Stderr, "  %-10s %s\n", a.Name, a.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()
	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	start := time.Now()
	pkgs, err := driver.Load(patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "kairoslint:", err)
		os.Exit(2)
	}
	loaded := time.Now()
	diags, err := driver.Run(pkgs, lint.Analyzers())
	if err != nil {
		fmt.Fprintln(os.Stderr, "kairoslint:", err)
		os.Exit(2)
	}
	if *verbose {
		fmt.Fprintf(os.Stderr, "kairoslint: %d packages loaded in %v, analyzed in %v (total %v)\n",
			len(pkgs),
			loaded.Sub(start).Round(time.Millisecond),
			time.Since(loaded).Round(time.Millisecond),
			time.Since(start).Round(time.Millisecond))
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}
