// Command kairoslint is the repo's static-analysis multichecker: it runs
// the internal/lint analyzer suite (floatdet, hotalloc, lockguard,
// wirejson) over the named package patterns and exits non-zero on any
// finding. Run it from the module root:
//
//	go run ./cmd/kairoslint ./...
//
// `make lint` and the CI lint job do exactly that. Suppress a single
// finding with a //kairoslint:allow <analyzer> comment on its line; the
// annotation conventions the analyzers enforce are documented in
// CONTRIBUTING.md.
package main

import (
	"flag"
	"fmt"
	"os"

	lint "kairos/internal/lint"
	"kairos/internal/lint/driver"
)

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: kairoslint [packages]\n\nAnalyzers:\n")
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(os.Stderr, "  %-10s %s\n", a.Name, a.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()
	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := driver.Load(patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "kairoslint:", err)
		os.Exit(2)
	}
	diags, err := driver.Run(pkgs, lint.Analyzers())
	if err != nil {
		fmt.Fprintln(os.Stderr, "kairoslint:", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}
