// Command diskprof builds the empirical disk model of a DBMS/OS/hardware
// configuration by sweeping working-set sizes and row-update rates on the
// simulator (paper Section 4.1, Figure 4), and writes the fitted profile as
// JSON for use by `kairos consolidate`.
//
// Usage:
//
//	diskprof [-quick] [-o profile.json] [-ws 1000,2000,3500] [-rates 1000,8000,20000]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"kairos/internal/model"
)

func parseList(s string) ([]float64, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]float64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("bad list element %q: %w", p, err)
		}
		out = append(out, v)
	}
	return out, nil
}

func main() {
	var (
		quick   = flag.Bool("quick", false, "use a reduced sweep (seconds instead of minutes)")
		out     = flag.String("o", "", "write profile JSON to this file (default stdout)")
		wsList  = flag.String("ws", "", "comma-separated working-set sizes in MB")
		rates   = flag.String("rates", "", "comma-separated row-update rates (rows/sec)")
		settle  = flag.Duration("settle", 0, "override per-point settle window")
		measure = flag.Duration("measure", 0, "override per-point measure window")
	)
	flag.Parse()

	pr := model.DefaultProfiler()
	if *quick {
		pr.WSPointsMB = []float64{500, 1500, 3000}
		pr.RatePoints = []float64{1000, 4000, 10000, 20000, 40000}
		pr.Settle = 30 * time.Second
		pr.Measure = 30 * time.Second
	}
	if ws, err := parseList(*wsList); err != nil {
		fmt.Fprintln(os.Stderr, "diskprof:", err)
		os.Exit(2)
	} else if len(ws) > 0 {
		pr.WSPointsMB = ws
	}
	if rs, err := parseList(*rates); err != nil {
		fmt.Fprintln(os.Stderr, "diskprof:", err)
		os.Exit(2)
	} else if len(rs) > 0 {
		pr.RatePoints = rs
	}
	if *settle > 0 {
		pr.Settle = *settle
	}
	if *measure > 0 {
		pr.Measure = *measure
	}

	fmt.Fprintf(os.Stderr, "diskprof: sweeping %d working sets x %d rates (%v simulated per point)...\n",
		len(pr.WSPointsMB), len(pr.RatePoints), pr.Settle+pr.Measure)
	start := time.Now()
	profile, err := pr.Run()
	if err != nil {
		fmt.Fprintln(os.Stderr, "diskprof:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "diskprof: done in %v (%d points, envelope=%v)\n",
		time.Since(start).Round(time.Millisecond), len(profile.Points), profile.HasEnvelope)

	w := os.Stdout
	var f *os.File
	if *out != "" {
		var err error
		if f, err = os.Create(*out); err != nil {
			fmt.Fprintln(os.Stderr, "diskprof:", err)
			os.Exit(1)
		}
		w = f
	}
	if err := profile.Save(w); err != nil {
		fmt.Fprintln(os.Stderr, "diskprof:", err)
		os.Exit(1)
	}
	// Close reports deferred write errors on a written file; dropping it
	// could silently truncate the profile.
	if f != nil {
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "diskprof:", err)
			os.Exit(1)
		}
	}
}
