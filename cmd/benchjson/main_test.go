package main

import "testing"

import "kairos/internal/floats"

func TestParseBenchLine(t *testing.T) {
	line := "BenchmarkCoarseScreenedSweep/screened-16         \t      10\t  15015811 ns/op\t      2098 fevals\t         6.061 sweep-speedup\t       0 B/op\t       0 allocs/op"
	r, ok := parseBenchLine(line)
	if !ok {
		t.Fatal("line not recognized")
	}
	if r.Name != "BenchmarkCoarseScreenedSweep/screened-16" {
		t.Fatalf("name = %q", r.Name)
	}
	if r.Iterations != 10 {
		t.Fatalf("iterations = %d", r.Iterations)
	}
	want := map[string]float64{
		"ns/op": 15015811, "fevals": 2098, "sweep-speedup": 6.061, "B/op": 0, "allocs/op": 0,
	}
	for unit, v := range want {
		if got := r.Metrics[unit]; !floats.Same(got, v) {
			t.Fatalf("metric %q = %v, want %v", unit, got, v)
		}
	}
}

func TestParseBenchLineRejectsNonResults(t *testing.T) {
	for _, line := range []string{
		"PASS",
		"ok  \tkairos\t1.2s",
		"BenchmarkBroken",
		"BenchmarkBroken notanumber",
		"--- BENCH: BenchmarkX",
	} {
		if _, ok := parseBenchLine(line); ok {
			t.Fatalf("line %q parsed as a result", line)
		}
	}
}

func TestHeaderLine(t *testing.T) {
	k, v, ok := headerLine("cpu: Intel(R) Xeon(R) Processor @ 2.70GHz")
	if !ok || k != "cpu" || v != "Intel(R) Xeon(R) Processor @ 2.70GHz" {
		t.Fatalf("got %q/%q/%v", k, v, ok)
	}
	if _, _, ok := headerLine("PASS"); ok {
		t.Fatal("PASS recognized as header")
	}
}
