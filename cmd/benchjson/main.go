// Command benchjson converts `go test -bench` output into machine-readable
// JSON for per-PR performance trajectories. It reads benchmark output on
// stdin and writes a JSON document to stdout:
//
//	go test -bench='Sweep' -benchmem -benchtime=10x -run='^$' . | benchjson
//
// Every benchmark result line becomes one entry with its iteration count
// and a metrics map (ns/op, B/op, allocs/op, plus any custom metrics such
// as sweep-speedup or fevals). Environment header lines (goos, goarch,
// pkg, cpu) are captured as metadata. Lines that are not benchmark results
// are ignored, so the tool can sit at the end of any `go test` pipeline.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	// Name is the full benchmark name, including sub-benchmarks and the
	// -cpu suffix (e.g. "BenchmarkCoarseScreenedSweep/screened-16").
	Name string `json:"name"`
	// Iterations is the measured b.N.
	Iterations int64 `json:"iterations"`
	// Metrics maps unit → value for every "<value> <unit>" pair on the
	// line: ns/op, B/op, allocs/op and custom b.ReportMetric units.
	Metrics map[string]float64 `json:"metrics"`
}

// Doc is the emitted JSON document.
type Doc struct {
	// Meta holds the environment header lines go test prints (goos,
	// goarch, pkg, cpu) when present.
	Meta map[string]string `json:"meta,omitempty"`
	// Results lists every parsed benchmark line in input order.
	Results []Result `json:"results"`
}

func main() {
	doc := Doc{Meta: map[string]string{}, Results: []Result{}}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if k, v, ok := headerLine(line); ok {
			doc.Meta[k] = v
			continue
		}
		if r, ok := parseBenchLine(line); ok {
			doc.Results = append(doc.Results, r)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: reading stdin:", err)
		os.Exit(1)
	}
	if len(doc.Meta) == 0 {
		doc.Meta = nil
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: writing JSON:", err)
		os.Exit(1)
	}
}

// headerLine recognizes the "key: value" environment lines of go test
// benchmark output.
func headerLine(line string) (key, value string, ok bool) {
	for _, k := range [...]string{"goos", "goarch", "pkg", "cpu"} {
		if rest, found := strings.CutPrefix(line, k+":"); found {
			return k, strings.TrimSpace(rest), true
		}
	}
	return "", "", false
}

// parseBenchLine parses one benchmark result line:
//
//	BenchmarkName-16  10  123456 ns/op  42 fevals  0 B/op  0 allocs/op
func parseBenchLine(line string) (Result, bool) {
	if !strings.HasPrefix(line, "Benchmark") {
		return Result{}, false
	}
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: fields[0], Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		r.Metrics[fields[i+1]] = v
	}
	return r, true
}
