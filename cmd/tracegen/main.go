// Command tracegen emits the synthetic production fleet traces Kairos'
// experiments consolidate (paper Section 7.1), either as CSV (one row per
// sample) or as rrdtool-style round-robin archives — the format the paper's
// real statistics arrived in (Cacti/Ganglia/Munin).
//
// Usage:
//
//	tracegen -dataset wikipedia -format csv -o traces/
//	tracegen -dataset all -format rrd -o traces/ -weeks 3
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"kairos/internal/fleet"
	"kairos/internal/rrd"
)

func pickDatasets(name string) ([]fleet.Dataset, error) {
	switch strings.ToLower(name) {
	case "internal":
		return []fleet.Dataset{fleet.Internal}, nil
	case "wikia":
		return []fleet.Dataset{fleet.Wikia}, nil
	case "wikipedia":
		return []fleet.Dataset{fleet.Wikipedia}, nil
	case "secondlife":
		return []fleet.Dataset{fleet.SecondLife}, nil
	case "all":
		return fleet.Datasets(), nil
	default:
		return nil, fmt.Errorf("unknown dataset %q (internal|wikia|wikipedia|secondlife|all)", name)
	}
}

func writeCSV(dir string, f fleet.Fleet) error {
	path := filepath.Join(dir, strings.ToLower(f.Name)+".csv")
	out, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := f.WriteCSV(out); err != nil {
		out.Close() //kairoslint:allow errflow: already failing with the write error; a close error would mask it
		return err
	}
	// Close reports deferred write errors on a written file; dropping it
	// could silently truncate the trace.
	if err := out.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "tracegen: wrote %s (%d servers x %d samples)\n",
		path, len(f.Servers), f.Servers[0].CPU.Len())
	return nil
}

func writeRRD(dir string, f fleet.Fleet) error {
	for _, s := range f.Servers {
		db, err := rrd.New(s.CPU.Start, s.CPU.Step,
			rrd.ArchiveSpec{CF: rrd.Average, Steps: 1, Rows: s.CPU.Len()},
			rrd.ArchiveSpec{CF: rrd.Average, Steps: 12, Rows: s.CPU.Len() / 12},
			rrd.ArchiveSpec{CF: rrd.MaxCF, Steps: 12, Rows: s.CPU.Len() / 12},
		)
		if err != nil {
			return err
		}
		db.UpdateAll(s.CPU.Values)
		path := filepath.Join(dir, s.Name+".rrd")
		out, err := os.Create(path)
		if err != nil {
			return err
		}
		if _, err := db.WriteTo(out); err != nil {
			out.Close() //kairoslint:allow errflow: already failing with the write error; a close error would mask it
			return err
		}
		if err := out.Close(); err != nil {
			return err
		}
	}
	fmt.Fprintf(os.Stderr, "tracegen: wrote %d rrd archives for %s\n", len(f.Servers), f.Name)
	return nil
}

func main() {
	var (
		dataset = flag.String("dataset", "all", "internal|wikia|wikipedia|secondlife|all")
		format  = flag.String("format", "csv", "csv|rrd")
		outDir  = flag.String("o", ".", "output directory")
		weeks   = flag.Int("weeks", 0, "generate N weeks of data instead of 24 hours")
	)
	flag.Parse()

	dss, err := pickDatasets(*dataset)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(2)
	}
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
	for _, d := range dss {
		var f fleet.Fleet
		if *weeks > 0 {
			f = fleet.GenerateWeeks(d, *weeks)
		} else {
			f = fleet.Generate(d)
		}
		var werr error
		switch strings.ToLower(*format) {
		case "csv":
			werr = writeCSV(*outDir, f)
		case "rrd":
			werr = writeRRD(*outDir, f)
		default:
			werr = fmt.Errorf("unknown format %q (csv|rrd)", *format)
		}
		if werr != nil {
			fmt.Fprintln(os.Stderr, "tracegen:", werr)
			os.Exit(1)
		}
	}
}
