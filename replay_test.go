package kairos

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"
)

// These tests pin the session-level recovery contract the durable control
// plane (internal/server + internal/journal) is built on: a crashed
// process replays its journaled windows detect-only and re-commits each
// journaled advance, and the result must be indistinguishable — plan,
// incumbent, detector state — from the live session that wrote the
// journal.

// replayFleet builds a session over the synthetic watch fleet, seeded
// with a solved incumbent.
func replayFleet(t *testing.T, wls []Workload, machines []Machine, inc *Incumbent) *Fleet {
	t.Helper()
	opt := DefaultResolveOptions()
	opt.SkipDirect = true
	f, err := NewFleet(FleetSpec{Name: "replay", Workloads: wls, Machines: machines},
		WithIncumbent(inc), WithResolveOptions(opt))
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestFleetReplayMatchesLive(t *testing.T) {
	wls, machines := watchFleet(8, 24)
	_, inc := solveIncumbent(t, wls, machines)
	quiet := scaleWorkloads(wls, 1.004)
	drifted := scaleWorkloads(wls, 1.12)
	stream := [][]Workload{quiet, scaleWorkloads(wls, 0.997), drifted, quiet}

	// Live session: the advance hook captures what the server would
	// journal — the new incumbent, before it is published.
	live := replayFleet(t, wls, machines, inc)
	var journaled []*Incumbent
	live.SetAdvanceHook(func(ev *ReconsolidationEvent) error {
		journaled = append(journaled, ev.Plan.Incumbent())
		return nil
	})
	var fired []bool
	for _, w := range stream {
		ev, err := live.Observe(context.Background(), w)
		if err != nil {
			t.Fatal(err)
		}
		fired = append(fired, ev != nil)
	}
	if !reflect.DeepEqual(fired, []bool{false, false, true, false}) {
		t.Fatalf("live trigger pattern %v, want only the drifted window firing", fired)
	}
	if len(journaled) != 1 {
		t.Fatalf("advance hook ran %d times, want 1", len(journaled))
	}

	// Replay session: adopt the registration-time incumbent, reconsume the
	// stream detect-only, re-commit the journaled advance at its trigger.
	replay := replayFleet(t, wls, machines, inc)
	if _, err := replay.AdoptIncumbent(inc); err != nil {
		t.Fatal(err)
	}
	adv := 0
	for i, w := range stream {
		triggered, err := replay.ObserveDetectOnly(w)
		if err != nil {
			t.Fatal(err)
		}
		if triggered != fired[i] {
			t.Fatalf("replayed window %d: triggered=%v, live fired=%v", i, triggered, fired[i])
		}
		if triggered {
			if _, err := replay.ReplayAdvance(journaled[adv]); err != nil {
				t.Fatal(err)
			}
			adv++
		}
	}

	// Recovered plan equals the last published plan.
	lp, rp := live.Plan(), replay.Plan()
	if lp.K != rp.K || !reflect.DeepEqual(lp.Assign, rp.Assign) {
		t.Fatalf("replayed plan (K=%d) differs from live plan (K=%d)", rp.K, lp.K)
	}
	if !reflect.DeepEqual(live.Incumbent(), replay.Incumbent()) {
		t.Fatal("replayed incumbent differs from live incumbent")
	}
	// Detector state is bit-identical, so the streams stay in lockstep:
	// the same fresh windows fire (or hold) on both sessions.
	lcp, rcp := live.Checkpoint(), replay.Checkpoint()
	if lcp.Windows != rcp.Windows || lcp.Armed != rcp.Armed || lcp.Cooldown != rcp.Cooldown {
		t.Fatalf("detector state diverged: live %d/%v/%d, replay %d/%v/%d",
			lcp.Windows, lcp.Armed, lcp.Cooldown, rcp.Windows, rcp.Armed, rcp.Cooldown)
	}
	for i := 0; i < 2; i++ {
		lev, err := live.Observe(context.Background(), quiet)
		if err != nil {
			t.Fatal(err)
		}
		rev, err := replay.Observe(context.Background(), quiet)
		if err != nil {
			t.Fatal(err)
		}
		if (lev == nil) != (rev == nil) {
			t.Fatalf("post-replay window %d diverged: live=%v, replay=%v", i, lev, rev)
		}
		if lev != nil && (lev.Window != rev.Window || lev.Plan.K != rev.Plan.K ||
			!reflect.DeepEqual(lev.Plan.Assign, rev.Plan.Assign)) {
			t.Fatalf("post-replay window %d: sessions fired different events", i)
		}
	}
}

func TestFleetCheckpointRestoreResumes(t *testing.T) {
	wls, machines := watchFleet(8, 24)
	_, inc := solveIncumbent(t, wls, machines)
	quiet1 := scaleWorkloads(wls, 1.004)
	quiet2 := scaleWorkloads(wls, 0.997)
	drifted := scaleWorkloads(wls, 1.12)

	live := replayFleet(t, wls, machines, inc)
	for _, w := range [][]Workload{quiet1, quiet2} {
		if ev, err := live.Observe(context.Background(), w); err != nil || ev != nil {
			t.Fatalf("quiet window: ev=%v err=%v", ev, err)
		}
	}
	cp := live.Checkpoint()
	if cp.Windows != 2 || !cp.Armed || cp.Incumbent == nil || len(cp.History) == 0 {
		t.Fatalf("checkpoint %+v incomplete after two windows", cp)
	}

	restored := replayFleet(t, wls, machines, inc)
	if _, err := restored.AdoptIncumbent(cp.Incumbent); err != nil {
		t.Fatal(err)
	}
	if err := restored.RestoreWatch(cp); err != nil {
		t.Fatal(err)
	}
	// The next drifted window must fire on both, producing the same plan:
	// the restored session forecasts from the same history.
	lev, err := live.Observe(context.Background(), drifted)
	if err != nil {
		t.Fatal(err)
	}
	rev, err := restored.Observe(context.Background(), drifted)
	if err != nil {
		t.Fatal(err)
	}
	if lev == nil || rev == nil {
		t.Fatalf("drifted window after restore: live=%v restored=%v, want both firing", lev, rev)
	}
	if lev.Window != rev.Window {
		t.Fatalf("restored trigger at window %d, live at %d", rev.Window, lev.Window)
	}
	if lev.Plan.K != rev.Plan.K || !reflect.DeepEqual(lev.Plan.Assign, rev.Plan.Assign) {
		t.Fatal("restored session re-solved to a different plan than the live one")
	}
}

func TestCheckpointWithoutWindows(t *testing.T) {
	wls, machines := watchFleet(4, 12)
	_, inc := solveIncumbent(t, wls, machines)
	f := replayFleet(t, wls, machines, inc)
	cp := f.Checkpoint()
	if cp.Windows != 0 || !cp.Armed || cp.Cooldown != 0 {
		t.Fatalf("fresh checkpoint %+v, want zero counters and armed", cp)
	}
	if !reflect.DeepEqual(cp.Incumbent, inc) {
		t.Fatal("fresh checkpoint lost the seeded incumbent")
	}
	// And a fleet with no plan at all checkpoints a nil incumbent, which
	// RestoreWatch refuses.
	empty, err := NewFleet(FleetSpec{Workloads: wls, Machines: machines})
	if err != nil {
		t.Fatal(err)
	}
	if cp := empty.Checkpoint(); cp.Incumbent != nil {
		t.Fatal("plan-less fleet checkpointed an incumbent")
	}
	if err := empty.RestoreWatch(&FleetCheckpoint{}); err == nil {
		t.Fatal("RestoreWatch accepted a checkpoint with no incumbent")
	}
}

// TestAdvanceHookAborts: a failing hook (the journal refusing the write)
// must abort the advance — nothing publishes, and the detector re-arms so
// the same drift fires again once the hook recovers.
func TestAdvanceHookAborts(t *testing.T) {
	wls, machines := watchFleet(8, 24)
	_, inc := solveIncumbent(t, wls, machines)
	drifted := scaleWorkloads(wls, 1.12)

	f := replayFleet(t, wls, machines, inc)
	boom := errors.New("journal full")
	f.SetAdvanceHook(func(*ReconsolidationEvent) error { return boom })
	if _, err := f.Observe(context.Background(), scaleWorkloads(wls, 1.004)); err != nil {
		t.Fatal(err)
	}
	_, err := f.Observe(context.Background(), drifted)
	if !errors.Is(err, boom) {
		t.Fatalf("aborted advance returned %v, want the hook's error", err)
	}
	if !reflect.DeepEqual(f.Incumbent(), inc) {
		t.Fatal("aborted advance still moved the incumbent")
	}
	if len(f.Events()) != 0 {
		t.Fatal("aborted advance still logged an event")
	}
	// Hook recovers: persistent drift fires again on the very next window.
	f.SetAdvanceHook(nil)
	ev, err := f.Observe(context.Background(), drifted)
	if err != nil {
		t.Fatal(err)
	}
	if ev == nil {
		t.Fatal("drift did not re-fire after the hook recovered")
	}
	if len(f.Events()) != 1 || f.Plan() != ev.Plan {
		t.Fatal("recovered advance did not publish its plan")
	}
}

// TestResolveErrorTyped: solver failures surface as *ResolveError (the
// control plane's backoff signal) while remaining errors.Is-transparent.
func TestResolveErrorTyped(t *testing.T) {
	wls, machines := watchFleet(8, 24)
	_, inc := solveIncumbent(t, wls, machines)
	f := replayFleet(t, wls, machines, inc)
	if _, err := f.Observe(context.Background(), scaleWorkloads(wls, 1.004)); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := f.Observe(ctx, scaleWorkloads(wls, 1.12))
	if err == nil {
		t.Fatal("cancelled triggered re-solve succeeded")
	}
	var re *ResolveError
	if !errors.As(err, &re) {
		t.Fatalf("re-solve failure %v is not a *ResolveError", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("ResolveError hides the cancellation: %v", err)
	}
	if !strings.Contains(re.Error(), "re-solve failed") {
		t.Fatalf("ResolveError message %q lost its context", re.Error())
	}
}
