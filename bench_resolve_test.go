// Benchmarks for rolling re-consolidation: warm-started re-solves on a
// drifted 197-server fleet versus solving cold, plus the memoized
// disk-envelope pricing hot path. `make bench-resolve` runs these with
// allocation stats; the warm/cold feval and migration metrics are the
// acceptance numbers tracked per PR.
package kairos

import (
	"context"
	"math/rand"
	"testing"

	"kairos/internal/core"
	"kairos/internal/fleet"
	"kairos/internal/model"
	"kairos/internal/polyfit"
)

// driftFleet returns a copy of the workloads with every series scaled by a
// deterministic per-workload factor in [1-frac, 1+frac] — one week of
// drift between consolidation runs.
func driftFleet(wls []core.Workload, frac float64, seed int64) []core.Workload {
	rng := rand.New(rand.NewSource(seed))
	out := make([]core.Workload, len(wls))
	for i, w := range wls {
		f := 1 + (rng.Float64()*2-1)*frac
		out[i] = w
		out[i].CPU = w.CPU.Scale(f).Clamp(0, 1)
		out[i].RAMBytes = w.RAMBytes.Scale(f)
		if w.WSBytes != nil {
			out[i].WSBytes = w.WSBytes.Scale(f)
		}
		if w.UpdateRate != nil {
			out[i].UpdateRate = w.UpdateRate.Scale(f)
		}
	}
	return out
}

// BenchmarkResolveWarmVsCold is the rolling re-consolidation scenario on
// the 197-server ALL fleet: consolidate once, drift every workload by ≤5%,
// then re-consolidate cold (fresh local-search solve) versus warm
// (Resolve from the incumbent plan). The warm case reports how many units
// migrated; both report objective evaluations — the cost metric that makes
// warm re-solves viable on a cadence.
func BenchmarkResolveWarmVsCold(b *testing.B) {
	base := fleetProblem(fleet.All(), nil)
	opt := core.DefaultSolveOptions()
	opt.SkipDirect = true // fleet-scale solves use the local-search path
	prev, err := core.Solve(context.Background(), base, opt)
	if err != nil {
		b.Fatal(err)
	}
	inc := core.IncumbentFromSolution(base, prev)
	drifted := &core.Problem{
		Workloads: driftFleet(base.Workloads, 0.05, 7),
		Machines:  base.Machines,
	}

	b.Run("cold", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sol, err := core.Solve(context.Background(), drifted, opt)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(sol.Fevals), "fevals")
			b.ReportMetric(float64(sol.K), "machines")
		}
	})
	b.Run("warm", func(b *testing.B) {
		b.ReportAllocs()
		ropt := core.DefaultResolveOptions()
		for i := 0; i < b.N; i++ {
			sol, err := core.Resolve(context.Background(), drifted, inc, ropt)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(sol.Fevals), "fevals")
			b.ReportMetric(float64(sol.K), "machines")
			b.ReportMetric(float64(sol.Migrated)/float64(len(sol.Assign)), "migrated-frac")
		}
	})
}

// benchSyntheticDiskProfile hand-writes a disk model with a saturation
// envelope so the envelope-pricing hot path runs without a profiler sweep.
func benchSyntheticDiskProfile() *model.DiskProfile {
	return &model.DiskProfile{
		Fit:         polyfit.Poly2D{Degree: 2, Coeffs: []float64{0.5, 0.002, 0.003, 0, 0, 0}},
		Envelope:    polyfit.Poly1D{Coeffs: []float64{60000, -0.9}},
		HasEnvelope: true,
		WSMinMB:     100,
		WSMaxMB:     100000,
	}
}

// BenchmarkLoadStateSweepEnvelope measures a full hill-climb pricing sweep
// with the non-linear disk model and its saturation envelope enabled — the
// path where every candidate move used to re-evaluate the envelope
// polynomial per time step for both machines. The per-evaluator memo
// serves repeat working sets from a direct-mapped cache (bit-identical to
// the polynomial), and pricing stays allocation-free.
func BenchmarkLoadStateSweepEnvelope(b *testing.B) {
	f := fleet.All()
	p := fleetProblem(f, benchSyntheticDiskProfile())
	ev, err := core.NewEvaluator(p)
	if err != nil {
		b.Fatal(err)
	}
	nU := ev.NumUnits()
	K := ev.FractionalLowerBound()
	assign := make([]int, nU)
	for u := range assign {
		assign[u] = u % K
	}
	ls := core.NewLoadState(ev, assign, K)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchSink += sweepLoadState(ls, K)
	}
}
