module kairos

go 1.22
