package kairos

import (
	"context"
	"fmt"
	"math"
	"strings"
	"testing"
	"time"

	"kairos/internal/fleet"
	"kairos/internal/floats"
	"kairos/internal/predict"
	"kairos/internal/series"
)

// watchFleet builds a small synthetic fleet for watch-loop tests.
func watchFleet(n, T int) ([]Workload, []Machine) {
	start := time.Unix(0, 0)
	step := 5 * time.Minute
	wls := make([]Workload, n)
	for i := range wls {
		base := 0.10 + 0.02*float64(i%5)
		cpu := series.FromFunc(start, step, T, func(_ time.Time, t int) float64 {
			return base + 0.03*math.Sin(2*math.Pi*float64(t)/float64(T)+float64(i))
		})
		wls[i] = Workload{
			Name:     "db" + string(rune('a'+i)),
			CPU:      cpu,
			RAMBytes: series.Constant(start, step, T, 4e9+1e9*float64(i%3)),
			PinTo:    -1,
		}
	}
	machines := make([]Machine, n)
	for j := range machines {
		machines[j] = fleet.TargetMachine("t"+string(rune('0'+j)), 50e6, 0.05)
	}
	return wls, machines
}

// scaleWorkloads returns a copy with every series scaled by f.
func scaleWorkloads(wls []Workload, f float64) []Workload {
	out := make([]Workload, len(wls))
	for i, w := range wls {
		out[i] = w
		out[i].CPU = w.CPU.Scale(f).Clamp(0, 1)
		out[i].RAMBytes = w.RAMBytes.Scale(f)
	}
	return out
}

func solveIncumbent(t *testing.T, wls []Workload, machines []Machine) (*Plan, *Incumbent) {
	t.Helper()
	opt := DefaultOptions()
	opt.SkipDirect = true
	plan, err := Consolidate(wls, machines, nil, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Feasible {
		t.Fatal("baseline plan infeasible")
	}
	return plan, plan.Incumbent()
}

func TestNewAutoReconsolidatorValidation(t *testing.T) {
	wls, machines := watchFleet(4, 12)
	_, inc := solveIncumbent(t, wls, machines)
	opt := DefaultWatchOptions()
	if _, err := NewAutoReconsolidator(nil, wls, machines, nil, opt); err == nil {
		t.Error("nil incumbent accepted")
	}
	if _, err := NewAutoReconsolidator(inc, wls, nil, nil, opt); err == nil {
		t.Error("no machines accepted")
	}
	if _, err := NewAutoReconsolidator(inc, nil, machines, nil, opt); err == nil {
		t.Error("no baseline accepted")
	}
	unnamed := append([]Workload(nil), wls...)
	unnamed[0].Name = ""
	if _, err := NewAutoReconsolidator(inc, unnamed, machines, nil, opt); err == nil {
		t.Error("unnamed workload accepted")
	}
	bad := opt
	bad.Drift.Threshold = -1
	if _, err := NewAutoReconsolidator(inc, wls, machines, nil, bad); err == nil {
		t.Error("invalid drift config accepted")
	}
}

// TestWatchTriggersOnlyOnDrift is the core loop contract on a synthetic
// fleet: quiet windows never fire, the drifted window fires immediately,
// and the triggered plan is exactly what the fixed-cadence warm re-solve
// would produce on the same forecast inputs — never worse.
func TestWatchTriggersOnlyOnDrift(t *testing.T) {
	wls, machines := watchFleet(8, 24)
	_, inc := solveIncumbent(t, wls, machines)
	opt := DefaultWatchOptions()
	opt.Resolve.SkipDirect = true

	quiet1 := scaleWorkloads(wls, 1.004)
	quiet2 := scaleWorkloads(wls, 0.997)
	drifted := scaleWorkloads(wls, 1.12)

	ar, err := NewAutoReconsolidator(inc, wls, machines, nil, opt)
	if err != nil {
		t.Fatal(err)
	}
	for i, w := range [][]Workload{quiet1, quiet2, quiet1} {
		ev, err := ar.Observe(context.Background(), w)
		if err != nil {
			t.Fatal(err)
		}
		if ev != nil {
			t.Fatalf("quiet window %d fired: %v", i, ev)
		}
	}
	ev, err := ar.Observe(context.Background(), drifted)
	if err != nil {
		t.Fatal(err)
	}
	if ev == nil {
		t.Fatal("12% drift did not fire within its own window")
	}
	if ev.Window != 3 {
		t.Errorf("event window = %d, want 3", ev.Window)
	}
	if ev.Trigger == nil || len(ev.Trigger.Causes) == 0 {
		t.Fatal("event carries no trigger evidence")
	}
	if !ev.Plan.Feasible {
		t.Error("triggered re-solve infeasible")
	}
	if s := ev.String(); !strings.Contains(s, "window 3") || !strings.Contains(s, "migrated") {
		t.Errorf("event string %q missing window/migration info", s)
	}
	// The loop must hand the re-solve the forecast series, not the stale
	// profile: a fixed-cadence Reconsolidate on the same forecast inputs
	// (mean of the two retained windows) must produce the identical plan.
	forecast := make([]Workload, len(wls))
	for i, w := range drifted {
		forecast[i] = w
		cpu, err := predict.MeanOfWindows([]*series.Series{quiet1[i].CPU, drifted[i].CPU})
		if err != nil {
			t.Fatal(err)
		}
		ram, err := predict.MeanOfWindows([]*series.Series{quiet1[i].RAMBytes, drifted[i].RAMBytes})
		if err != nil {
			t.Fatal(err)
		}
		forecast[i].CPU, forecast[i].RAMBytes = cpu, ram
	}
	cadence, err := Reconsolidate(forecast, machines, nil, inc, opt.Resolve)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Plan.K != cadence.K || math.Abs(ev.Plan.Objective-cadence.Objective) > 1e-12 {
		t.Errorf("triggered plan (K=%d obj=%v) differs from fixed-cadence warm re-solve on the same inputs (K=%d obj=%v)",
			ev.Plan.K, ev.Plan.Objective, cadence.K, cadence.Objective)
	}
	if !floats.Same(ev.ObjectiveDelta, ev.StaleObjective-ev.Plan.Objective) {
		t.Errorf("ObjectiveDelta = %v, want stale-new = %v",
			ev.ObjectiveDelta, ev.StaleObjective-ev.Plan.Objective)
	}
	// The re-solve's plan becomes the incumbent for the next trigger.
	if ar.Incumbent() != ev.Plan.Incumbent() {
		t.Error("incumbent not advanced to the re-solved plan")
	}
	// Post-trigger convergence: the detector was rebased onto the forecast
	// (halfway between quiet and drifted), so a fleet that stays at the
	// drifted level still deviates ~5% from the new plan's assumptions.
	// The loop is allowed one convergence re-solve (after the cool-down)
	// and must then settle — no further events once the baseline matches
	// the observed level.
	var extra int
	for i := 0; i < 4; i++ {
		ev, err := ar.Observe(context.Background(), drifted)
		if err != nil {
			t.Fatal(err)
		}
		if ev != nil {
			extra++
		}
	}
	if extra > 1 {
		t.Errorf("loop thrashed: %d re-solves while holding a steady level, want ≤1 convergence step", extra)
	}
	ev2, err := ar.Observe(context.Background(), drifted)
	if err != nil {
		t.Fatal(err)
	}
	if ev2 != nil {
		t.Errorf("settled fleet re-fired: %v", ev2)
	}
	if ar.Window() != 9 {
		t.Errorf("Window() = %d, want 9", ar.Window())
	}
}

// TestWatchRejectedWindowIsNotConsumed: a malformed observation window
// errors without entering the forecast history or the detector, so the
// loop recovers cleanly on the next valid window.
func TestWatchRejectedWindowIsNotConsumed(t *testing.T) {
	wls, machines := watchFleet(6, 24)
	_, inc := solveIncumbent(t, wls, machines)
	opt := DefaultWatchOptions()
	opt.Resolve.SkipDirect = true
	ar, err := NewAutoReconsolidator(inc, wls, machines, nil, opt)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ar.Observe(context.Background(), scaleWorkloads(wls, 1.001)); err != nil {
		t.Fatal(err)
	}
	// A window whose WSBytes disagrees with its CPU shape — a series the
	// detector does not track — must be rejected up front, not recorded.
	bad := scaleWorkloads(wls, 1.001)
	bad[0].WSBytes = series.Constant(time.Unix(0, 0), time.Minute, 3, 1e9)
	if _, err := ar.Observe(context.Background(), bad); err == nil {
		t.Fatal("internally inconsistent window accepted")
	}
	if ar.Window() != 1 {
		t.Fatalf("rejected window consumed: Window() = %d, want 1", ar.Window())
	}
	// The next valid drifted window triggers and re-solves — the bad
	// window left no residue in the forecast history.
	ev, err := ar.Observe(context.Background(), scaleWorkloads(wls, 1.15))
	if err != nil {
		t.Fatal(err)
	}
	if ev == nil {
		t.Fatal("drift after a rejected window should still trigger")
	}
	if !ev.Plan.Feasible {
		t.Error("recovered re-solve infeasible")
	}
}

// TestWatchConvenienceLoop drives the same scenario through Watch.
func TestWatchConvenienceLoop(t *testing.T) {
	wls, machines := watchFleet(8, 24)
	_, inc := solveIncumbent(t, wls, machines)
	opt := DefaultWatchOptions()
	opt.Resolve.SkipDirect = true
	windows := [][]Workload{
		scaleWorkloads(wls, 1.003),
		scaleWorkloads(wls, 1.10),
		scaleWorkloads(wls, 1.10),
	}
	events, final, err := Watch(inc, wls, windows, machines, nil, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 {
		t.Fatalf("got %d events, want exactly 1 (trigger then settle)", len(events))
	}
	if events[0].Window != 1 {
		t.Errorf("event window = %d, want 1", events[0].Window)
	}
	if final != events[0].Plan.Incumbent() {
		t.Error("final incumbent is not the re-solved plan")
	}
	// Shape errors surface, not panic.
	bad := [][]Workload{{
		{Name: "dba", CPU: series.Constant(time.Unix(0, 0), time.Minute, 3, 0.1),
			RAMBytes: series.Constant(time.Unix(0, 0), time.Minute, 3, 1e9), PinTo: -1},
	}}
	if _, _, err := Watch(inc, wls, bad, machines, nil, opt); err == nil {
		t.Error("mismatched window shape accepted")
	}
}

// TestWatchDriftedFleet197 is the acceptance scenario on the full
// 197-server ALL fleet: no trigger across undrifted observation windows,
// a trigger within one window of the 5%-drifted trace, and a triggered
// plan no worse than the PR 3 fixed-cadence warm re-solve on the same
// inputs.
func TestWatchDriftedFleet197(t *testing.T) {
	if testing.Short() {
		t.Skip("197-server fleet solve in -short mode")
	}
	f := fleet.All()
	wls := f.Workloads(0.7)
	machines := make([]Machine, len(f.Servers))
	for j := range machines {
		machines[j] = fleet.TargetMachine(fmt.Sprintf("t%d", j), 50e6, 0.05)
	}
	opt := DefaultOptions()
	opt.SkipDirect = true
	base, err := Consolidate(wls, machines, nil, opt)
	if err != nil {
		t.Fatal(err)
	}
	inc := base.Incumbent()

	wopt := DefaultWatchOptions()
	wopt.Resolve.SkipDirect = true
	ar, err := NewAutoReconsolidator(inc, wls, machines, nil, wopt)
	if err != nil {
		t.Fatal(err)
	}
	// Undrifted trace: repeated observation of the solved-against series
	// (plus sub-threshold measurement noise) must never trigger.
	for i, frac := range []float64{0, 0.005, 0.003} {
		win := wls
		if frac > 0 {
			win = driftFleet(wls, frac, int64(100+i))
		}
		ev, err := ar.Observe(context.Background(), win)
		if err != nil {
			t.Fatal(err)
		}
		if ev != nil {
			t.Fatalf("undrifted window %d triggered: %v", i, ev)
		}
	}
	// 5%-drifted trace: must trigger within one evaluation window.
	drifted := driftFleet(wls, 0.05, 7)
	ev, err := ar.Observe(context.Background(), drifted)
	if err != nil {
		t.Fatal(err)
	}
	if ev == nil {
		t.Fatal("5% drift did not trigger within one window")
	}
	if !ev.Plan.Feasible {
		t.Error("triggered re-solve infeasible on the drifted fleet")
	}
	// Never worse than the fixed-cadence warm re-solve on the same
	// (forecast) inputs.
	forecast := make([]Workload, len(wls))
	hist := [][]Workload{wls, driftFleet(wls, 0.003, 102), drifted}
	hist = hist[len(hist)-2:]
	for i := range wls {
		forecast[i] = drifted[i]
		var cpuW, ramW, wsW, rateW []*series.Series
		for _, h := range hist {
			cpuW = append(cpuW, h[i].CPU)
			ramW = append(ramW, h[i].RAMBytes)
			if h[i].WSBytes != nil {
				wsW = append(wsW, h[i].WSBytes)
			}
			if h[i].UpdateRate != nil {
				rateW = append(rateW, h[i].UpdateRate)
			}
		}
		if forecast[i].CPU, err = predict.MeanOfWindows(cpuW); err != nil {
			t.Fatal(err)
		}
		if forecast[i].RAMBytes, err = predict.MeanOfWindows(ramW); err != nil {
			t.Fatal(err)
		}
		if len(wsW) > 0 {
			if forecast[i].WSBytes, err = predict.MeanOfWindows(wsW); err != nil {
				t.Fatal(err)
			}
		}
		if len(rateW) > 0 {
			if forecast[i].UpdateRate, err = predict.MeanOfWindows(rateW); err != nil {
				t.Fatal(err)
			}
		}
	}
	cadence, err := Reconsolidate(forecast, machines, nil, inc, wopt.Resolve)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Plan.K > cadence.K ||
		(ev.Plan.K == cadence.K && ev.Plan.Objective > cadence.Objective+1e-12) {
		t.Errorf("triggered plan (K=%d obj=%v) worse than fixed-cadence warm re-solve (K=%d obj=%v)",
			ev.Plan.K, ev.Plan.Objective, cadence.K, cadence.Objective)
	}
	// The stale incumbent priced on the forecast is what the re-solve had
	// to beat; sanity-check the delta is reported coherently.
	if !floats.Same(ev.ObjectiveDelta, ev.StaleObjective-ev.Plan.Objective) {
		t.Errorf("delta %v != stale %v - new %v", ev.ObjectiveDelta, ev.StaleObjective, ev.Plan.Objective)
	}
}
