// Fleet-scale benchmarks: the consolidation experiments on the real-world
// style datasets (Figures 5, 7, 8, 9, 13 and the Section 6 solver
// optimization), the virtualization comparison (Figures 10, 11), and
// ablations of the design choices DESIGN.md calls out.
package kairos

import (
	"context"
	"fmt"
	"math"
	"sort"
	"testing"
	"time"

	"kairos/internal/core"
	"kairos/internal/dbms"
	"kairos/internal/direct"
	"kairos/internal/fleet"
	"kairos/internal/model"
	"kairos/internal/predict"
	"kairos/internal/series"
	"kairos/internal/stats"
	"kairos/internal/vm"
	"kairos/internal/workload"
)

// fleetProblem builds the consolidation problem for one dataset.
func fleetProblem(f fleet.Fleet, dp *model.DiskProfile) *core.Problem {
	wls := f.Workloads(0.7)
	machines := make([]core.Machine, len(f.Servers))
	for i := range machines {
		machines[i] = fleet.TargetMachine(fmt.Sprintf("t%d", i), 50e6, 0.05)
	}
	return &core.Problem{Workloads: wls, Machines: machines, Disk: dp}
}

// BenchmarkFigure5_ObjectiveFunction reproduces Figure 5: the shape of the
// consolidation objective — per-K basins whose minima sit at balanced load,
// a global minimum at the smallest feasible K, and a penalty wall where
// constraints are violated.
func BenchmarkFigure5_ObjectiveFunction(b *testing.B) {
	// A scenario whose optimum is 4 servers: four heavy workloads (0.5
	// CPU) force K ≥ 4, and twelve light ones (0.05 CPU) can be skewed
	// around to trace the balance basin before the constraint wall.
	n := 12
	start := time.Unix(0, 0)
	var wls []core.Workload
	for i := 0; i < 16; i++ {
		cpu := 0.05
		if i < 4 {
			cpu = 0.5
		}
		wls = append(wls, core.Workload{
			Name:     fmt.Sprintf("w%d", i),
			CPU:      series.Constant(start, 5*time.Minute, n, cpu),
			RAMBytes: series.Constant(start, 5*time.Minute, n, 4e9),
			PinTo:    -1,
		})
	}
	machines := make([]core.Machine, 6)
	for i := range machines {
		machines[i] = core.Machine{Name: fmt.Sprintf("m%d", i), CPUCapacity: 1, RAMBytes: 96e9}
	}
	p := &core.Problem{Workloads: wls, Machines: machines}

	type pt struct {
		k        int
		skew     int // how many workloads piled on server 0 beyond balance
		obj      float64
		feasible bool
	}
	var pts []pt
	for iter := 0; iter < b.N; iter++ {
		pts = pts[:0]
		ev, err := core.NewEvaluator(p)
		if err != nil {
			b.Fatal(err)
		}
		for _, k := range []int{3, 4, 5, 6} {
			// Sweep from balanced round-robin to increasingly skewed
			// assignments (more load on server 0).
			for skew := 0; skew <= 4; skew++ {
				assign := make([]int, 16)
				for u := range assign {
					assign[u] = u % k
				}
				// Move `skew` light workloads from their home onto the
				// first server.
				moved := 0
				for u := 4; u < len(assign); u++ {
					if moved >= skew {
						break
					}
					if assign[u] != 0 {
						assign[u] = 0
						moved++
					}
				}
				obj, feas := ev.Eval(assign, k)
				pts = append(pts, pt{k, skew, obj, feas})
			}
		}
	}
	b.StopTimer()
	fmt.Println("\n== Figure 5: objective function shape ==")
	fmt.Printf("%4s %6s %14s %9s\n", "K", "skew", "objective", "feasible")
	for _, q := range pts {
		o := fmt.Sprintf("%14.4f", q.obj)
		if q.obj > 1e5 {
			o = "  PENALTY WALL"
		}
		fmt.Printf("%4d %6d %s %9v\n", q.k, q.skew, o, q.feasible)
	}
	fmt.Println("(4-server balanced is the global minimum; 3 servers hits the wall;")
	fmt.Println(" more servers or more skew always score worse)")
}

// BenchmarkFigure7_ConsolidationRatios reproduces Figure 7: consolidation
// ratios for the four datasets and their union, against the greedy
// single-resource baseline and the fractional/idealized lower bound.
func BenchmarkFigure7_ConsolidationRatios(b *testing.B) {
	dp := mustProfile(b)
	type row struct {
		name                     string
		servers, kairos, ideal   int
		greedy                   string
		cores, consolidatedCores int
	}
	var rows []row
	for iter := 0; iter < b.N; iter++ {
		rows = rows[:0]
		run := func(name string, f fleet.Fleet) {
			p := fleetProblem(f, dp)
			sol, err := core.Solve(context.Background(), p, core.DefaultSolveOptions())
			if err != nil {
				b.Fatal(err)
			}
			ev, err := core.NewEvaluator(p)
			if err != nil {
				b.Fatal(err)
			}
			greedyK := "invalid"
			if bins, ok := greedyBaseline(ev, len(p.Workloads), len(p.Machines)); ok {
				greedyK = fmt.Sprintf("%d", bins)
			}
			rows = append(rows, row{
				name: name, servers: len(f.Servers), kairos: sol.K,
				ideal: ev.FractionalLowerBound(), greedy: greedyK,
				cores: f.TotalCores(), consolidatedCores: sol.K * fleet.TargetCores,
			})
		}
		for _, d := range fleet.Datasets() {
			run(d.String(), fleet.Generate(d))
		}
		run("ALL", fleet.All())
	}
	b.StopTimer()
	fmt.Println("\n== Figure 7: consolidation ratios (12-core / 96 GB targets) ==")
	fmt.Printf("%-12s %8s %8s %8s %8s %9s %12s\n",
		"dataset", "servers", "greedy", "kairos", "ideal", "ratio", "cores")
	for _, r := range rows {
		fmt.Printf("%-12s %8d %8s %8d %8d %7.1f:1 %5d->%4d\n",
			r.name, r.servers, r.greedy, r.kairos, r.ideal,
			float64(r.servers)/float64(r.kairos), r.cores, r.consolidatedCores)
	}
	fmt.Println("(paper: ratios 5.5:1 to 17:1; kairos matches ideal almost everywhere;")
	fmt.Println(" ALL: 197 servers / 1419 cores -> 21 servers / 252 cores)")
}

// greedyBaseline runs the paper's single-resource greedy packer through the
// evaluator's full feasibility check.
func greedyBaseline(ev *core.Evaluator, nUnits, maxBins int) (int, bool) {
	fits := func(bin []int, item int) bool {
		members := append(append([]int(nil), bin...), item)
		return ev.FitsOneMachine(0, members)
	}
	// Single resource: peak CPU (the most volatile in these datasets).
	loads := make([]float64, nUnits)
	report := ev.Report(identityAssign(nUnits), nUnits)
	for u := 0; u < nUnits; u++ {
		loads[u] = report[u].CPUPeak
	}
	bins, ok := packFirstFit(loads, fits, maxBins)
	return bins, ok
}

func identityAssign(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// packFirstFit mirrors internal/greedy.Pack for the benchmark's use.
func packFirstFit(loads []float64, fits func([]int, int) bool, maxBins int) (int, bool) {
	order := identityAssign(len(loads))
	sort.SliceStable(order, func(a, b int) bool { return loads[order[a]] > loads[order[b]] })
	var bins [][]int
	for _, item := range order {
		placed := false
		for bi := range bins {
			if fits(bins[bi], item) {
				bins[bi] = append(bins[bi], item)
				placed = true
				break
			}
		}
		if !placed {
			if len(bins) >= maxBins || !fits(nil, item) {
				return 0, false
			}
			bins = append(bins, []int{item})
		}
	}
	return len(bins), true
}

// BenchmarkFigure8_AggregateCPULoad reproduces Figure 8: the average, 95th
// and 5th percentile of per-server CPU utilization over 24 hours after
// consolidating the ALL dataset — high and low utilization stay close
// (balance) and the 95th percentile stays well below saturation.
func BenchmarkFigure8_AggregateCPULoad(b *testing.B) {
	dp := mustProfile(b)
	var report []core.ServerLoad
	var K int
	for iter := 0; iter < b.N; iter++ {
		p := fleetProblem(fleet.All(), dp)
		sol, err := core.Solve(context.Background(), p, core.DefaultSolveOptions())
		if err != nil {
			b.Fatal(err)
		}
		ev, err := core.NewEvaluator(p)
		if err != nil {
			b.Fatal(err)
		}
		report = ev.Report(sol.Assign, sol.K)
		K = sol.K
	}
	b.StopTimer()
	fmt.Printf("\n== Figure 8: aggregate CPU load for 197 workloads on %d servers ==\n", K)
	fmt.Printf("%6s %10s %10s %10s\n", "hour", "avg_cpu%", "p95_cpu%", "p5_cpu%")
	T := fleet.SamplesPerDay
	for hour := 0; hour < 24; hour += 2 {
		var vals []float64
		for _, sl := range report {
			if !sl.Used {
				continue
			}
			for t := hour * 12; t < (hour+1)*12 && t < T; t++ {
				vals = append(vals, sl.CPU[t]*100)
			}
		}
		avg := stats.Mean(vals)
		p95, _ := stats.Percentile(vals, 95)
		p5, _ := stats.Percentile(vals, 5)
		fmt.Printf("%5dh %10.1f %10.1f %10.1f\n", hour, avg, p95, p5)
	}
}

// BenchmarkFigure9_PerServerLoad reproduces Figure 9: per-server CPU
// box-plots and maximum RAM after consolidating the ALL dataset, showing
// balanced load and that no two servers can be merged further.
func BenchmarkFigure9_PerServerLoad(b *testing.B) {
	dp := mustProfile(b)
	var report []core.ServerLoad
	var ev *core.Evaluator
	var sol *core.Solution
	for iter := 0; iter < b.N; iter++ {
		p := fleetProblem(fleet.All(), dp)
		var err error
		sol, err = core.Solve(context.Background(), p, core.DefaultSolveOptions())
		if err != nil {
			b.Fatal(err)
		}
		ev, err = core.NewEvaluator(p)
		if err != nil {
			b.Fatal(err)
		}
		report = ev.Report(sol.Assign, sol.K)
	}
	b.StopTimer()
	fmt.Printf("\n== Figure 9: per-server load, %d consolidated servers ==\n", sol.K)
	fmt.Printf("%7s %8s %8s %8s %8s %8s %10s\n",
		"server", "cpu_min%", "cpu_q1%", "cpu_med%", "cpu_q3%", "cpu_max%", "ram_max_GB")
	for j, sl := range report {
		if !sl.Used {
			continue
		}
		bp, err := stats.NewBoxPlot(sl.CPU)
		if err != nil {
			b.Fatal(err)
		}
		fmt.Printf("%7d %8.1f %8.1f %8.1f %8.1f %8.1f %10.1f\n",
			j, bp.Min*100, bp.Q1*100, bp.Median*100, bp.Q3*100, bp.Max*100, sl.RAMPeak/1e9)
	}
	// "No two servers can be merged": verify pairwise.
	members := make([][]int, sol.K)
	for u, j := range sol.Assign {
		members[j] = append(members[j], u)
	}
	mergeable := 0
	for a := 0; a < sol.K; a++ {
		for c := a + 1; c < sol.K; c++ {
			if ev.FitsOneMachine(0, append(append([]int(nil), members[a]...), members[c]...)) {
				mergeable++
			}
		}
	}
	fmt.Printf("mergeable server pairs: %d (0 means the plan is locally tight)\n", mergeable)
}

// BenchmarkFigure10_HardwareVirtualization reproduces Figure 10: total
// TPC-C throughput at a fixed 20:1 consolidation level, one consolidated
// DBMS against one-VM-per-database, for a uniform and a skewed demand mix.
func BenchmarkFigure10_HardwareVirtualization(b *testing.B) {
	type row struct {
		scenario string
		mode     vm.Mode
		tps      float64
		diskUtil float64
	}
	var rows []row
	runMode := func(scenario string, mode vm.Mode, specs []workload.Spec) {
		h, err := vm.NewHost(vm.DefaultHostConfig(mode))
		if err != nil {
			b.Fatal(err)
		}
		if err := h.AddWorkloads(specs, true); err != nil {
			b.Fatal(err)
		}
		st, err := h.Run(30*time.Second, 100*time.Millisecond)
		if err != nil {
			b.Fatal(err)
		}
		rows = append(rows, row{scenario, mode, st.ThroughputTPS, st.AvgDiskUtilization})
	}
	for iter := 0; iter < b.N; iter++ {
		rows = rows[:0]
		uniform := make([]workload.Spec, 20)
		for i := range uniform {
			s := workload.TPCC(10, 200)
			s.Name = fmt.Sprintf("u%02d", i)
			uniform[i] = s
		}
		skewed := make([]workload.Spec, 20)
		for i := range skewed {
			s := workload.TPCC(10, 1)
			s.Name = fmt.Sprintf("s%02d", i)
			skewed[i] = s
		}
		skewed[0].TPS = 800
		for _, mode := range []vm.Mode{vm.ConsolidatedDBMS, vm.HardwareVirtualization} {
			runMode("uniform", mode, uniform)
			runMode("skewed", mode, skewed)
		}
	}
	b.StopTimer()
	fmt.Println("\n== Figure 10: hardware virtualization at fixed 20:1 consolidation ==")
	fmt.Printf("%-10s %-22s %10s %10s\n", "scenario", "strategy", "total_tps", "disk_util")
	var consU, hwU, consS, hwS float64
	for _, r := range rows {
		fmt.Printf("%-10s %-22s %10.1f %9.0f%%\n", r.scenario, r.mode, r.tps, r.diskUtil*100)
		switch {
		case r.scenario == "uniform" && r.mode == vm.ConsolidatedDBMS:
			consU = r.tps
		case r.scenario == "uniform" && r.mode == vm.HardwareVirtualization:
			hwU = r.tps
		case r.scenario == "skewed" && r.mode == vm.ConsolidatedDBMS:
			consS = r.tps
		case r.scenario == "skewed" && r.mode == vm.HardwareVirtualization:
			hwS = r.tps
		}
	}
	fmt.Printf("consolidated advantage: uniform %.1fx, skewed %.1fx (paper: 6-12x)\n",
		consU/math.Max(hwU, 1), consS/math.Max(hwS, 1))
}

// BenchmarkFigure11_OSVirtualization reproduces Figure 11: maximum average
// per-database throughput as the number of consolidated TPC-C workloads
// grows, one consolidated DBMS against one-process-per-database OS
// virtualization.
func BenchmarkFigure11_OSVirtualization(b *testing.B) {
	type row struct {
		tenants   int
		cons, osv float64
	}
	var rows []row
	for iter := 0; iter < b.N; iter++ {
		rows = rows[:0]
		for _, n := range []int{10, 20, 40, 60, 80} {
			specs := make([]workload.Spec, n)
			for i := range specs {
				s := workload.TPCC(2, 200)
				s.Name = fmt.Sprintf("t%02d", i)
				specs[i] = s
			}
			run := func(mode vm.Mode) float64 {
				h, err := vm.NewHost(vm.DefaultHostConfig(mode))
				if err != nil {
					b.Fatal(err)
				}
				if err := h.AddWorkloads(specs, true); err != nil {
					b.Fatal(err)
				}
				st, err := h.Run(20*time.Second, 100*time.Millisecond)
				if err != nil {
					b.Fatal(err)
				}
				return st.ThroughputTPS / float64(n)
			}
			rows = append(rows, row{n, run(vm.ConsolidatedDBMS), run(vm.OSVirtualization)})
		}
	}
	b.StopTimer()
	fmt.Println("\n== Figure 11: OS virtualization across consolidation levels ==")
	fmt.Printf("%8s %22s %18s\n", "tenants", "consolidated tps/db", "os-virt tps/db")
	for _, r := range rows {
		fmt.Printf("%8d %22.1f %18.1f\n", r.tenants, r.cons, r.osv)
	}
	fmt.Println("(paper: at equal per-DB throughput the consolidated DBMS sustains")
	fmt.Println(" 1.9x-3.3x more databases per machine)")
}

// BenchmarkFigure13_Predictability reproduces Figure 13: the average of two
// weeks of CPU load predicts the third week within a few percent for the
// Wikipedia and Second Life fleets.
func BenchmarkFigure13_Predictability(b *testing.B) {
	type row struct {
		dataset string
		rmse    float64
		pct     float64
	}
	var rows []row
	for iter := 0; iter < b.N; iter++ {
		rows = rows[:0]
		for _, d := range []fleet.Dataset{fleet.Wikipedia, fleet.SecondLife} {
			f := fleet.GenerateWeeks(d, 3)
			agg := f.AggregateCPU().Scale(100) // percent, like the paper's plot
			fc, err := predict.AverageOfWeeks(agg, 7*fleet.SamplesPerDay, 2, 2)
			if err != nil {
				b.Fatal(err)
			}
			rows = append(rows, row{d.String(), fc.RMSE, fc.CVRMSEPct})
		}
	}
	b.StopTimer()
	fmt.Println("\n== Figure 13: predicting week 3 from the average of weeks 1-2 ==")
	fmt.Printf("%-12s %12s %14s\n", "dataset", "rmse", "rel_error")
	for _, r := range rows {
		fmt.Printf("%-12s %12.2f %13.1f%%\n", r.dataset, r.rmse, r.pct)
	}
	fmt.Println("(paper: RMSE ≈ 25 scaled-cpu points, 7-8% relative error)")
}

// BenchmarkSolver_BoundedKSpeedup reproduces the Section 6 optimization:
// bounding the server count K (fractional lower bound, greedy upper bound,
// binary search) before the global search gives a feasible, balanced plan
// in a fraction of the evaluations a naive full-range DIRECT needs — which,
// at an equal budget, usually cannot even find a feasible assignment
// because the unbounded space is dominated by wasteful or violating
// configurations (the paper reports a 45x running-time reduction).
func BenchmarkSolver_BoundedKSpeedup(b *testing.B) {
	type res struct {
		name     string
		k        int
		feasible bool
		elapsed  time.Duration
		fevals   int
	}
	var results []res
	for iter := 0; iter < b.N; iter++ {
		results = results[:0]
		p := fleetProblem(fleet.Generate(fleet.SecondLife), nil)

		// Bounded-K pipeline (the paper's optimization).
		start := time.Now()
		sol, err := core.Solve(context.Background(), p, core.DefaultSolveOptions())
		if err != nil {
			b.Fatal(err)
		}
		results = append(results, res{"bounded-K + polish", sol.K, sol.Feasible,
			time.Since(start), sol.Fevals})

		// Naive: DIRECT over the full machine range with the same budget,
		// no bounds, no greedy seed, no polish.
		ev, err := core.NewEvaluator(p)
		if err != nil {
			b.Fatal(err)
		}
		K := len(p.Machines)
		nU := ev.NumUnits()
		lower := make([]float64, nU)
		upper := make([]float64, nU)
		for i := range upper {
			upper[i] = float64(K)
		}
		tmp := make([]int, nU)
		toAssign := func(x []float64) []int {
			a := make([]int, nU)
			for i, v := range x {
				j := int(v)
				if j >= K {
					j = K - 1
				}
				a[i] = j
			}
			return a
		}
		start = time.Now()
		dres, err := direct.Minimize(func(x []float64) float64 {
			for i, v := range x {
				j := int(v)
				if j >= K {
					j = K - 1
				}
				tmp[i] = j
			}
			o, _ := ev.Eval(tmp, K)
			return o
		}, lower, upper, direct.Options{MaxFevals: sol.Fevals})
		if err != nil {
			b.Fatal(err)
		}
		naive := toAssign(dres.X)
		used := map[int]bool{}
		for _, j := range naive {
			used[j] = true
		}
		_, feas := ev.Eval(naive, K)
		results = append(results, res{"naive full-range DIRECT", len(used), feas,
			time.Since(start), dres.Fevals})
	}
	b.StopTimer()
	fmt.Println("\n== Section 6: solver optimization (SecondLife, 97 workloads) ==")
	fmt.Printf("%-26s %10s %10s %12s %10s\n", "strategy", "servers", "feasible", "time", "fevals")
	for _, r := range results {
		fmt.Printf("%-26s %10d %10v %12s %10d\n",
			r.name, r.k, r.feasible, r.elapsed.Round(time.Millisecond), r.fevals)
	}
	fmt.Println("(paper: bounding K cut solve time up to 45x — 44s instead of 33min)")
}

// BenchmarkAblation_DiskModelVsNaiveSum quantifies how much the empirical
// disk model matters: the naive sum of standalone disk writes overestimates
// the combined requirement because idle flushing inflates standalone
// measurements (the paper reports up to 32x error reduction at high load).
func BenchmarkAblation_DiskModelVsNaiveSum(b *testing.B) {
	dp := mustProfile(b)
	var modelPred, naivePred, real float64
	for iter := 0; iter < b.N; iter++ {
		// Four identical moderate workloads measured standalone.
		spec := workload.Spec{Name: "abl", DataPages: 64000, WorkingSetPages: 32000,
			TPS: 2000, UpdatesPerTxn: 1}
		var naive float64
		for i := 0; i < 4; i++ {
			in := newBenchInstance(b, func(c *dbms.Config) { c.BufferPoolBytes = 4 << 30 })
			gen, err := workload.Provision(in, spec, true)
			if err != nil {
				b.Fatal(err)
			}
			for t := 0; t < 300; t++ {
				in.Tick(100*time.Millisecond, []dbms.Request{gen.Next(100 * time.Millisecond)})
			}
			in.Disk().TakeStats()
			for t := 0; t < 300; t++ {
				in.Tick(100*time.Millisecond, []dbms.Request{gen.Next(100 * time.Millisecond)})
			}
			naive += in.Disk().TakeStats().WriteMBps()
		}
		// Model prediction for the combination.
		modelPred = dp.PredictWriteMBps(4*float64(spec.WorkingSetBytes()), 4*spec.TPS)
		naivePred = naive
		// Reality: all four in one instance.
		in := newBenchInstance(b, func(c *dbms.Config) { c.BufferPoolBytes = 8 << 30 })
		var gens []*workload.Generator
		for i := 0; i < 4; i++ {
			s := spec
			s.Name = fmt.Sprintf("abl-%d", i)
			gen, err := workload.Provision(in, s, true)
			if err != nil {
				b.Fatal(err)
			}
			gens = append(gens, gen)
		}
		for t := 0; t < 300; t++ {
			reqs := make([]dbms.Request, len(gens))
			for i, g := range gens {
				reqs[i] = g.Next(100 * time.Millisecond)
			}
			in.Tick(100*time.Millisecond, reqs)
		}
		in.Disk().TakeStats()
		for t := 0; t < 300; t++ {
			reqs := make([]dbms.Request, len(gens))
			for i, g := range gens {
				reqs[i] = g.Next(100 * time.Millisecond)
			}
			in.Tick(100*time.Millisecond, reqs)
		}
		real = in.Disk().TakeStats().WriteMBps()
	}
	b.StopTimer()
	fmt.Println("\n== Ablation: disk model vs naive I/O summing (4x combined workload) ==")
	fmt.Printf("real combined writes:    %7.2f MB/s\n", real)
	fmt.Printf("disk model prediction:   %7.2f MB/s (error %.2f MB/s)\n", modelPred, math.Abs(modelPred-real))
	fmt.Printf("naive sum of standalone: %7.2f MB/s (error %.2f MB/s)\n", naivePred, math.Abs(naivePred-real))
	if naiveErr, modelErr := math.Abs(naivePred-real), math.Abs(modelPred-real); modelErr > 0 {
		fmt.Printf("model reduces estimation error %.1fx\n", naiveErr/modelErr)
	}
}

// BenchmarkAblation_GaugedVsOSReportedRAM quantifies the value of
// buffer-pool gauging for consolidation: packing with OS-reported
// allocations instead of gauged working sets inflates the machine count.
func BenchmarkAblation_GaugedVsOSReportedRAM(b *testing.B) {
	var kGauged, kAllocated int
	for iter := 0; iter < b.N; iter++ {
		f := fleet.Generate(fleet.Wikipedia)
		solveWith := func(ramScale float64, useProvisioned bool) int {
			wls := f.Workloads(ramScale)
			if useProvisioned {
				for i := range wls {
					// OS view: the entire provisioned RAM looks active.
					prov := float64(f.Servers[i].RAMBytes)
					wls[i].RAMBytes = series.Constant(wls[i].RAMBytes.Start,
						wls[i].RAMBytes.Step, wls[i].RAMBytes.Len(), prov)
				}
			}
			machines := make([]core.Machine, len(f.Servers))
			for i := range machines {
				machines[i] = fleet.TargetMachine(fmt.Sprintf("t%d", i), 50e6, 0.05)
			}
			sol, err := core.Solve(context.Background(), &core.Problem{Workloads: wls, Machines: machines},
				core.DefaultSolveOptions())
			if err != nil {
				b.Fatal(err)
			}
			return sol.K
		}
		kGauged = solveWith(0.7, false)
		kAllocated = solveWith(1.0, true)
	}
	b.StopTimer()
	fmt.Println("\n== Ablation: gauged working sets vs OS-reported allocations (Wikipedia) ==")
	fmt.Printf("machines with gauged RAM:      %d\n", kGauged)
	fmt.Printf("machines with OS-reported RAM: %d (%.1fx more)\n",
		kAllocated, float64(kAllocated)/float64(kGauged))
}

// BenchmarkAblation_SolverStrategies compares the solver's pieces on the
// SecondLife dataset: greedy seed alone, greedy+hill-climb, and the full
// pipeline with DIRECT.
func BenchmarkAblation_SolverStrategies(b *testing.B) {
	type res struct {
		name    string
		k       int
		obj     float64
		elapsed time.Duration
	}
	var results []res
	for iter := 0; iter < b.N; iter++ {
		results = results[:0]
		p := fleetProblem(fleet.Generate(fleet.SecondLife), nil)

		opts := core.DefaultSolveOptions()
		opts.SkipDirect = true
		start := time.Now()
		sol, err := core.Solve(context.Background(), p, opts)
		if err != nil {
			b.Fatal(err)
		}
		results = append(results, res{"greedy + hill-climb", sol.K, sol.Objective, time.Since(start)})

		opts = core.DefaultSolveOptions()
		start = time.Now()
		sol, err = core.Solve(context.Background(), p, opts)
		if err != nil {
			b.Fatal(err)
		}
		results = append(results, res{"full (with DIRECT)", sol.K, sol.Objective, time.Since(start)})
	}
	b.StopTimer()
	fmt.Println("\n== Ablation: solver strategies (SecondLife dataset) ==")
	fmt.Printf("%-22s %8s %14s %12s\n", "strategy", "servers", "objective", "time")
	for _, r := range results {
		fmt.Printf("%-22s %8d %14.4f %12s\n", r.name, r.k, r.obj, r.elapsed.Round(time.Millisecond))
	}
}

// BenchmarkAblation_BalanceObjective compares the paper's exponential
// balance term against a linear one: at equal K the exponential objective
// produces visibly more balanced per-server peaks.
func BenchmarkAblation_BalanceObjective(b *testing.B) {
	var expSpread, linSpread float64
	for iter := 0; iter < b.N; iter++ {
		f := fleet.Generate(fleet.Internal)
		p := fleetProblem(f, nil)
		sol, err := core.Solve(context.Background(), p, core.DefaultSolveOptions())
		if err != nil {
			b.Fatal(err)
		}
		ev, err := core.NewEvaluator(p)
		if err != nil {
			b.Fatal(err)
		}
		spread := func(assign []int, k int) float64 {
			report := ev.Report(assign, k)
			var mn, mx = math.Inf(1), 0.0
			for _, sl := range report {
				if !sl.Used {
					continue
				}
				mn = math.Min(mn, sl.CPUPeak)
				mx = math.Max(mx, sl.CPUPeak)
			}
			return mx - mn
		}
		expSpread = spread(sol.Assign, sol.K)

		// Linear objective surrogate: first-fit-decreasing packing into the
		// same K machines without a balance incentive.
		fits := func(bin []int, item int) bool {
			members := append(append([]int(nil), bin...), item)
			return ev.FitsOneMachine(0, members)
		}
		loads := make([]float64, ev.NumUnits())
		rep := ev.Report(identityAssign(ev.NumUnits()), ev.NumUnits())
		for u := range loads {
			loads[u] = rep[u].CPUPeak
		}
		if _, ok := packFirstFit(loads, fits, sol.K); ok {
			// Rebuild the packing to compute its spread.
			assign := packAssign(loads, fits, sol.K)
			linSpread = spread(assign, sol.K)
		}
	}
	b.StopTimer()
	fmt.Println("\n== Ablation: exponential balance objective vs first-fit packing ==")
	fmt.Printf("per-server CPU-peak spread (max-min): balanced solver %.3f vs first-fit %.3f\n",
		expSpread, linSpread)
}

func packAssign(loads []float64, fits func([]int, int) bool, maxBins int) []int {
	order := identityAssign(len(loads))
	sort.SliceStable(order, func(a, b int) bool { return loads[order[a]] > loads[order[b]] })
	assign := make([]int, len(loads))
	var bins [][]int
	for _, item := range order {
		placed := false
		for bi := range bins {
			if fits(bins[bi], item) {
				bins[bi] = append(bins[bi], item)
				assign[item] = bi
				placed = true
				break
			}
		}
		if !placed && len(bins) < maxBins {
			bins = append(bins, []int{item})
			assign[item] = len(bins) - 1
		}
	}
	return assign
}
