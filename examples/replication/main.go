// Command replication demonstrates the placement-constraint features of the
// consolidation engine: replicas with anti-affinity (paper Section 5),
// measured per-replica load scaling, machine pinning, latency SLAs (the
// future extension Section 1 proposes), and partitioned solving for very
// large inventories (Section 7.5).
package main

import (
	"context"
	"fmt"
	"log"
	"math"
	"time"

	"kairos"
	"kairos/internal/series"
)

func wl(name string, cpu, ramGB float64) kairos.Workload {
	start := time.Unix(0, 0).UTC()
	n := 288
	return kairos.Workload{
		Name:       name,
		CPU:        series.Constant(start, 5*time.Minute, n, cpu),
		RAMBytes:   series.Constant(start, 5*time.Minute, n, ramGB*1e9),
		WSBytes:    series.Constant(start, 5*time.Minute, n, ramGB*1e9),
		UpdateRate: series.Constant(start, 5*time.Minute, n, 100),
		PinTo:      -1,
	}
}

func targets(n int) []kairos.Machine {
	out := make([]kairos.Machine, n)
	for i := range out {
		out[i] = kairos.Machine{
			Name:        fmt.Sprintf("rack-%d", i),
			CPUCapacity: 1.0,
			RAMBytes:    64e9,
			Headroom:    0.05,
		}
	}
	return out
}

func main() {
	fmt.Println("== Placement constraints and extensions ==")

	// 1. A primary with two replicas: the engine never co-locates copies.
	fmt.Println("\n1. replication with anti-affinity")
	orders := wl("orders", 0.30, 4)
	orders.Replicas = 3
	// Measured replica loads: read-only standbys carry ~40% of the primary.
	orders.ReplicaLoadScale = []float64{1.0, 0.4, 0.4}
	sessions := wl("sessions", 0.25, 2)
	plan, err := kairos.Consolidate([]kairos.Workload{orders, sessions}, targets(6), nil, kairos.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(plan)

	// 2. A latency-sensitive workload: a 1.5x slowdown SLA caps its host's
	// utilization at 33%, forcing it away from busy machines.
	fmt.Println("2. latency SLA")
	checkout := wl("checkout", 0.15, 2)
	checkout.SLA = &kairos.LatencySLA{MaxSlowdown: 1.5}
	batch := wl("batch", 0.55, 8)
	plan, err = kairos.Consolidate([]kairos.Workload{checkout, batch}, targets(4), nil, kairos.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(plan)

	// 3. Pinning: compliance requires the audit database on rack-2.
	fmt.Println("3. pinning")
	audit := wl("audit", 0.1, 1)
	audit.PinTo = 2
	plan, err = kairos.Consolidate([]kairos.Workload{audit, wl("misc", 0.1, 1)}, targets(4), nil, kairos.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(plan)

	// 4. Partitioned solving: 120 small tenants in groups of 20 — each
	// group solved independently, total work linear in the tenant count.
	fmt.Println("4. partitioned solving (120 tenants, groups of 20)")
	var fleet []kairos.Workload
	for i := 0; i < 120; i++ {
		cpu := 0.04 + 0.03*math.Sin(float64(i))
		if cpu < 0.01 {
			cpu = 0.01
		}
		fleet = append(fleet, wl(fmt.Sprintf("tenant-%03d", i), cpu, 0.8))
	}
	start := time.Now()
	ps, err := kairos.ConsolidatePartitioned(context.Background(), fleet, targets(120), nil,
		kairos.Grouping{GroupSize: 20, Options: kairos.DefaultOptions()})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  120 tenants -> %d machines (%.1f:1) across %d groups, feasible=%v, in %v\n",
		ps.K, ps.ConsolidationRatio(120), len(ps.Groups), ps.Feasible,
		time.Since(start).Round(time.Millisecond))
}
