// Command vmcompare reproduces the paper's Section 7.4 comparison: the same
// 20 TPC-C tenants run under (i) one consolidated DBMS instance — Kairos'
// approach, (ii) OS-level virtualization (one DBMS process per database on
// one kernel), and (iii) hardware virtualization (one VM per database), all
// on identical simulated hardware. The paper reports 6–12× higher
// throughput for the consolidated DBMS against VMware ESXi (Figure 10) and
// 1.9–3.3× higher viable consolidation levels against OS virtualization
// (Figure 11).
package main

import (
	"fmt"
	"log"
	"time"

	"kairos/internal/vm"
	"kairos/internal/workload"
)

func tenants(n int, warehouses int, tps float64) []workload.Spec {
	specs := make([]workload.Spec, n)
	for i := range specs {
		s := workload.TPCC(warehouses, tps)
		s.Name = fmt.Sprintf("%s-%02d", s.Name, i)
		specs[i] = s
	}
	return specs
}

func run(mode vm.Mode, specs []workload.Spec) vm.RunStats {
	h, err := vm.NewHost(vm.DefaultHostConfig(mode))
	if err != nil {
		log.Fatal(err)
	}
	if err := h.AddWorkloads(specs, true); err != nil {
		log.Fatal(err)
	}
	st, err := h.Run(30*time.Second, 100*time.Millisecond)
	if err != nil {
		log.Fatal(err)
	}
	return st
}

func main() {
	fmt.Println("== DB-in-VM comparison (Figures 10 and 11) ==")

	fmt.Println("\nuniform load: 20 TPC-C tenants (10 warehouses each) at 50 tps demand")
	specs := tenants(20, 10, 50)
	var consTPS float64
	for _, mode := range []vm.Mode{vm.ConsolidatedDBMS, vm.OSVirtualization, vm.HardwareVirtualization} {
		st := run(mode, specs)
		marker := ""
		if mode == vm.ConsolidatedDBMS {
			consTPS = st.ThroughputTPS
		} else if consTPS > 0 && st.ThroughputTPS > 0 {
			marker = fmt.Sprintf("  (consolidated is %.1fx higher)", consTPS/st.ThroughputTPS)
		}
		fmt.Printf("  %-22s %8.1f tps  disk util %.0f%%%s\n",
			mode, st.ThroughputTPS, st.AvgDiskUtilization*100, marker)
	}

	fmt.Println("\nskewed load: 19 tenants throttled to 1 tps, 1 tenant at maximum speed")
	specs = tenants(20, 10, 1)
	specs[0].TPS = 2000
	consTPS = 0
	for _, mode := range []vm.Mode{vm.ConsolidatedDBMS, vm.HardwareVirtualization} {
		st := run(mode, specs)
		marker := ""
		if mode == vm.ConsolidatedDBMS {
			consTPS = st.ThroughputTPS
		} else if consTPS > 0 && st.ThroughputTPS > 0 {
			marker = fmt.Sprintf("  (consolidated is %.1fx higher)", consTPS/st.ThroughputTPS)
		}
		fmt.Printf("  %-22s %8.1f tps  hot tenant %8.1f tps%s\n",
			mode, st.ThroughputTPS, st.PerTenantTPS[0], marker)
	}

	fmt.Println("\nconsolidation level sweep (Figure 11): max per-DB throughput at N tenants")
	fmt.Printf("  %8s %22s %22s\n", "tenants", "consolidated (tps/db)", "os-virt (tps/db)")
	for _, n := range []int{10, 20, 40, 60, 80} {
		specs := tenants(n, 2, 200) // demand beyond capacity: measure the max
		cons := run(vm.ConsolidatedDBMS, specs)
		osv := run(vm.OSVirtualization, specs)
		fmt.Printf("  %8d %22.1f %22.1f\n",
			n, cons.ThroughputTPS/float64(n), osv.ThroughputTPS/float64(n))
	}
}
