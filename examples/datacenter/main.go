// Command datacenter reproduces the paper's headline experiment (Section
// 7.3, Figure 7) at full scale: consolidate the four real-world fleets —
// Internal, Wikia, Wikipedia, Second Life, and their union ALL — onto
// 12-core / 96 GB target machines, comparing Kairos against the greedy
// single-resource baseline and the fractional/idealized lower bound.
package main

import (
	"context"
	"fmt"
	"log"

	"kairos/internal/core"
	"kairos/internal/fleet"
	"kairos/internal/greedy"
	"kairos/internal/model"
)

const (
	diskBudgetBps = 50e6
	headroom      = 0.05
	ramScale      = 0.7 // the paper's scaling for ungauged historical stats
)

func main() {
	fmt.Println("== Data-center consolidation (Figure 7) ==")
	fmt.Println("building target hardware disk profile...")
	pr := model.DefaultProfiler()
	pr.WSPointsMB = []float64{500, 1500, 3000}
	pr.RatePoints = []float64{1000, 4000, 10000, 20000}
	pr.Settle, pr.Measure = 30e9, 30e9 // 30s each
	dp, err := pr.Run()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%-12s %8s %8s %8s %8s %8s %10s\n",
		"dataset", "servers", "greedy", "kairos", "ideal", "ratio", "feasible")

	run := func(name string, f fleet.Fleet) {
		wls := f.Workloads(ramScale)
		machines := make([]core.Machine, len(f.Servers))
		for i := range machines {
			machines[i] = fleet.TargetMachine(fmt.Sprintf("t%d", i), diskBudgetBps, headroom)
		}
		p := &core.Problem{Workloads: wls, Machines: machines, Disk: dp}

		sol, err := core.Solve(context.Background(), p, core.DefaultSolveOptions())
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		ev, err := core.NewEvaluator(p)
		if err != nil {
			log.Fatal(err)
		}
		ideal := ev.FractionalLowerBound()

		// Greedy baseline: single-resource first-fit with full validation.
		greedyK := "—"
		loads := make([]float64, len(wls))
		for i, w := range wls {
			loads[i] = w.CPU.Max()
		}
		fits := func(bin []int, item int) bool {
			members := append(append([]int(nil), bin...), item)
			return ev.FitsOneMachine(0, members)
		}
		if bins, ok, err := greedy.Pack(loads, fits, len(machines)); err == nil && ok {
			greedyK = fmt.Sprintf("%d", len(bins))
		}

		fmt.Printf("%-12s %8d %8s %8d %8d %7.1f:1 %10v\n",
			name, len(f.Servers), greedyK, sol.K, ideal,
			sol.ConsolidationRatio(len(f.Servers)), sol.Feasible)
	}

	for _, d := range fleet.Datasets() {
		run(d.String(), fleet.Generate(d))
	}
	run("ALL", fleet.All())
}
