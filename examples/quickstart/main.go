// Command quickstart shows the minimal Kairos workflow: profile the target
// hardware, describe a handful of database workloads, and compute a
// consolidation plan.
package main

import (
	"fmt"
	"log"
	"math"
	"time"

	"kairos"
	"kairos/internal/series"
)

// workload builds a resource profile with a diurnal CPU cycle.
func workload(name string, meanCPU, ramGB, updates float64, peakHour int) kairos.Workload {
	start := time.Unix(0, 0).UTC()
	step := 5 * time.Minute
	n := 288 // 24 hours
	cpu := series.FromFunc(start, step, n, func(_ time.Time, i int) float64 {
		hour := float64(i) / 12
		phase := (hour - float64(peakHour)) / 24 * 2 * math.Pi
		v := meanCPU * (1 + 0.6*math.Cos(phase))
		if v < 0.005 {
			v = 0.005
		}
		return v
	})
	return kairos.Workload{
		Name:       name,
		CPU:        cpu,
		RAMBytes:   series.Constant(start, step, n, ramGB*1e9),
		WSBytes:    series.Constant(start, step, n, ramGB*1e9),
		UpdateRate: series.Constant(start, step, n, updates),
		PinTo:      -1,
	}
}

func main() {
	fmt.Println("== Kairos quickstart ==")
	fmt.Println("1. profiling target hardware (quick sweep)...")
	profile, err := kairos.ProfileHardware(kairos.QuickProfiler())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("   disk profile %q: %d sweep points, saturation envelope=%v\n",
		profile.ConfigName, len(profile.Points), profile.HasEnvelope)

	fmt.Println("2. describing workloads (normally produced by the monitor)...")
	workloads := []kairos.Workload{
		workload("orders-db", 0.12, 2.0, 400, 14),
		workload("users-db", 0.08, 1.5, 150, 15),
		workload("wiki-db", 0.15, 3.0, 250, 21),
		workload("analytics-db", 0.10, 4.0, 600, 3),
		workload("sessions-db", 0.06, 1.0, 300, 20),
		workload("inventory-db", 0.09, 2.5, 200, 11),
	}

	machines := make([]kairos.Machine, len(workloads))
	for i := range machines {
		machines[i] = kairos.Machine{
			Name:         fmt.Sprintf("target-%d", i),
			CPUCapacity:  1.0,
			RAMBytes:     32e9,
			DiskWriteBps: 50e6,
			Headroom:     0.05,
		}
	}

	fmt.Println("3. solving the consolidation program...")
	plan, err := kairos.Consolidate(workloads, machines, profile, kairos.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(plan)
	fmt.Printf("consolidation ratio: %.1f:1\n", plan.ConsolidationRatio(len(workloads)))
}
