// Command gauging demonstrates buffer-pool gauging (paper Section 3.1,
// Figures 2 and 3): a TPC-C-like workload runs against a simulated MySQL
// instance whose buffer pool is far larger than the application's working
// set; Kairos grows a probe table inside the DBMS and watches physical
// reads to discover how much of that memory is actually needed.
package main

import (
	"fmt"
	"log"
	"time"

	"kairos"
	"kairos/internal/dbms"
	"kairos/internal/disk"
	"kairos/internal/workload"
)

func main() {
	fmt.Println("== Buffer-pool gauging demo ==")

	// A MySQL-style instance with a 953 MB buffer pool (the paper's
	// gauging experiments) on a 7200 RPM SATA disk.
	d, err := disk.New(disk.Server7200SATA())
	if err != nil {
		log.Fatal(err)
	}
	cfg := dbms.DefaultConfig() // 953 MB pool, O_DIRECT
	in, err := dbms.NewInstance(cfg, d, 0)
	if err != nil {
		log.Fatal(err)
	}

	// TPC-C scaled to 2 warehouses: a ~280 MB working set, so roughly 70%
	// of the pool is slack the DBMS holds onto without needing it.
	spec := workload.TPCC(2, 100)
	gen, err := workload.Provision(in, spec, true)
	if err != nil {
		log.Fatal(err)
	}

	gc := kairos.GaugeConfig{
		ProbeTable:            "kairos_probe",
		InitialGrowPages:      256,
		MaxStealFraction:      0.95,
		Window:                5 * time.Second,
		ScansPerWindow:        5,
		ReadIncreaseThreshold: 20,
		Tick:                  100 * time.Millisecond,
	}
	fmt.Printf("buffer pool: %d MB; true working set: %d MB (hidden from the gauge)\n",
		cfg.BufferPoolBytes>>20, spec.WorkingSetBytes()>>20)
	fmt.Println("growing probe table while TPC-C keeps running...")

	res, err := kairos.GaugeWorkingSet(in, []*workload.Generator{gen}, gc)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nprobe curve (the Figure 2 shape — flat, then a knee):")
	fmt.Println("  stolen_MB  phys_reads_per_sec  probe_growth_MB_per_sec")
	for _, pt := range res.Curve {
		fmt.Printf("  %9.0f  %18.1f  %23.2f\n",
			float64(pt.StolenBytes)/1e6, pt.ReadsPerSec, pt.GrowPagesPerSec*16384/1e6)
	}

	alloc := in.AllocatedRAMBytes()
	fmt.Printf("\ndetected: %v after stealing %d MB (%.0f%% of the pool)\n",
		res.Detected, res.StolenBytes>>20,
		float64(res.StolenBytes)/float64(res.AccessibleBytes)*100)
	fmt.Printf("gauged working set: %d MB (true: %d MB)\n",
		res.WorkingSetBytes>>20, spec.WorkingSetBytes()>>20)
	fmt.Printf("OS-reported allocation: %d MB -> savings factor %.1fx (paper: 2.8x for TPC-C)\n",
		alloc>>20, res.SavingsFactor(alloc))
	fmt.Printf("gauging took %v of simulated time\n", res.Elapsed)

	// Impact on the running workload (Table 2's concern).
	st := gen.DB().Stats()
	rate := float64(st.Txns) / res.Elapsed.Seconds()
	fmt.Printf("workload throughput during gauging: %.1f tps of %.0f demanded\n", rate, spec.TPS)
}
