package kairos

import (
	"context"
	"math"
	"sync"
	"testing"

	"kairos/internal/core"
)

// TestNewFleetValidation: structural spec errors surface at construction.
func TestNewFleetValidation(t *testing.T) {
	wls, machines := watchFleet(4, 12)
	if _, err := NewFleet(FleetSpec{Machines: machines}); err == nil {
		t.Error("empty workload list accepted")
	}
	if _, err := NewFleet(FleetSpec{Workloads: wls}); err == nil {
		t.Error("empty machine list accepted")
	}
	bad := append([]Machine(nil), machines...)
	bad[0].CPUCapacity = 0
	if _, err := NewFleet(FleetSpec{Workloads: wls, Machines: bad}); err == nil {
		t.Error("zero-capacity machine accepted")
	}
}

// TestFleetConsolidateMatchesCoreSolve: the session's cold solve is the
// same plan core.Solve computes — the handle adds state, not behaviour.
func TestFleetConsolidateMatchesCoreSolve(t *testing.T) {
	wls, machines := watchFleet(8, 24)
	opt := DefaultOptions()
	opt.SkipDirect = true

	f, err := NewFleet(FleetSpec{Name: "test", Workloads: wls, Machines: machines},
		WithSolveOptions(opt))
	if err != nil {
		t.Fatal(err)
	}
	if f.Name() != "test" {
		t.Errorf("Name() = %q", f.Name())
	}
	if f.Plan() != nil || f.Incumbent() != nil {
		t.Error("fresh session already has a plan")
	}
	plan, err := f.Consolidate(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	sol, err := core.Solve(context.Background(), &Problem{Workloads: wls, Machines: machines}, opt)
	if err != nil {
		t.Fatal(err)
	}
	if plan.K != sol.K || math.Abs(plan.Objective-sol.Objective) > 1e-12 {
		t.Errorf("session plan (K=%d obj=%v) != core.Solve (K=%d obj=%v)",
			plan.K, plan.Objective, sol.K, sol.Objective)
	}
	if f.Plan() != plan {
		t.Error("Plan() does not return the consolidation result")
	}
	if f.Incumbent() == nil {
		t.Error("Consolidate did not set the incumbent")
	}
}

// TestFleetObserveLifecycle: quiet windows hold, a drifted window
// triggers, and the served plan, event log and drift status all advance.
func TestFleetObserveLifecycle(t *testing.T) {
	wls, machines := watchFleet(8, 24)
	opt := DefaultOptions()
	opt.SkipDirect = true
	resolve := DefaultResolveOptions()
	resolve.SkipDirect = true

	f, err := NewFleet(FleetSpec{Workloads: wls, Machines: machines},
		WithSolveOptions(opt), WithResolveOptions(resolve))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Observe(context.Background(), wls); err == nil {
		t.Fatal("Observe before Consolidate accepted")
	}
	initial, err := f.Consolidate(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		ev, err := f.Observe(context.Background(), scaleWorkloads(wls, 1.004))
		if err != nil {
			t.Fatal(err)
		}
		if ev != nil {
			t.Fatalf("quiet window %d fired: %v", i, ev)
		}
	}
	if st := f.Drift(); st.Windows != 2 || st.Triggers != 0 || st.LastTrigger != -1 {
		t.Errorf("drift status after quiet windows = %+v", st)
	}
	ev, err := f.Observe(context.Background(), scaleWorkloads(wls, 1.12))
	if err != nil {
		t.Fatal(err)
	}
	if ev == nil {
		t.Fatal("12% drift did not trigger")
	}
	if f.Plan() != ev.Plan {
		t.Error("served plan did not advance to the re-solve")
	}
	if f.Plan() == initial {
		t.Error("served plan still the initial one after a trigger")
	}
	events := f.Events()
	if len(events) != 1 || events[0] != ev {
		t.Errorf("event log = %v, want exactly the trigger", events)
	}
	if st := f.Drift(); st.Triggers != 1 || st.LastTrigger != ev.Window {
		t.Errorf("drift status after trigger = %+v", st)
	}
	// The event log is a copy: mutating it must not corrupt the session.
	events[0] = nil
	if got := f.Events(); len(got) != 1 || got[0] != ev {
		t.Error("Events() exposed internal state")
	}
}

// TestFleetWithIncumbentObserve: a session seeded from a saved plan
// watches immediately, without a cold solve — the serve daemon's restart
// path and the Watch wrapper both rely on this.
func TestFleetWithIncumbentObserve(t *testing.T) {
	wls, machines := watchFleet(6, 24)
	_, inc := solveIncumbent(t, wls, machines)
	resolve := DefaultResolveOptions()
	resolve.SkipDirect = true

	f, err := NewFleet(FleetSpec{Workloads: wls, Machines: machines},
		WithIncumbent(inc), WithResolveOptions(resolve))
	if err != nil {
		t.Fatal(err)
	}
	if f.Plan() != nil {
		t.Error("seeded session claims a computed plan")
	}
	if f.Incumbent() != inc {
		t.Error("Incumbent() != seed before any observation")
	}
	ev, err := f.Observe(context.Background(), scaleWorkloads(wls, 1.15))
	if err != nil {
		t.Fatal(err)
	}
	if ev == nil {
		t.Fatal("seeded session did not trigger on 15% drift")
	}
	if f.Incumbent() == inc {
		t.Error("incumbent did not advance after the triggered re-solve")
	}
}

// TestFleetWithIncumbentWarmConsolidate: Consolidate on a seeded session
// re-solves warm — identical to the deprecated Reconsolidate wrapper.
func TestFleetWithIncumbentWarmConsolidate(t *testing.T) {
	wls, machines := watchFleet(8, 24)
	_, inc := solveIncumbent(t, wls, machines)
	drifted := scaleWorkloads(wls, 1.08)
	resolve := DefaultResolveOptions()
	resolve.SkipDirect = true

	f, err := NewFleet(FleetSpec{Workloads: drifted, Machines: machines},
		WithIncumbent(inc), WithResolveOptions(resolve))
	if err != nil {
		t.Fatal(err)
	}
	warm, err := f.Consolidate(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	want, err := Reconsolidate(drifted, machines, nil, inc, resolve)
	if err != nil {
		t.Fatal(err)
	}
	if warm.K != want.K || math.Abs(warm.Objective-want.Objective) > 1e-12 ||
		warm.Migrated != want.Migrated {
		t.Errorf("warm session solve (K=%d obj=%v mig=%d) != Reconsolidate (K=%d obj=%v mig=%d)",
			warm.K, warm.Objective, warm.Migrated, want.K, want.Objective, want.Migrated)
	}
}

// TestFleetShardedConsolidate: WithShards routes cold solves through the
// sharded fleet engine.
func TestFleetShardedConsolidate(t *testing.T) {
	wls, machines := watchFleet(12, 12)
	opt := DefaultOptions()
	opt.SkipDirect = true

	f, err := NewFleet(FleetSpec{Workloads: wls, Machines: machines},
		WithSolveOptions(opt), WithShards(3))
	if err != nil {
		t.Fatal(err)
	}
	plan, err := f.Consolidate(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	want, err := ConsolidateFleet(wls, machines, nil, ShardOptions{Shards: 3, Options: opt})
	if err != nil {
		t.Fatal(err)
	}
	if plan.K != want.K || math.Abs(plan.Objective-want.Objective) > 1e-12 {
		t.Errorf("sharded session solve (K=%d obj=%v) != ConsolidateFleet (K=%d obj=%v)",
			plan.K, plan.Objective, want.K, want.Objective)
	}
}

// TestAutoReconsolidatorConcurrentObserve hammers Observe from many
// goroutines under -race: the loop's mutex must keep the incumbent,
// detector and forecast history coherent while quiet and drifted windows
// land in arbitrary interleavings.
func TestAutoReconsolidatorConcurrentObserve(t *testing.T) {
	wls, machines := watchFleet(6, 12)
	_, inc := solveIncumbent(t, wls, machines)
	opt := DefaultWatchOptions()
	opt.Resolve.SkipDirect = true
	ar, err := NewAutoReconsolidator(inc, wls, machines, nil, opt)
	if err != nil {
		t.Fatal(err)
	}

	const collectors = 8
	const windowsEach = 5
	var wg sync.WaitGroup
	errs := make(chan error, collectors*windowsEach)
	for c := 0; c < collectors; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < windowsEach; i++ {
				// Mostly quiet traffic with drifted windows mixed in.
				scale := 1.002
				if (c+i)%3 == 0 {
					scale = 1.15
				}
				if _, err := ar.Observe(context.Background(), scaleWorkloads(wls, scale)); err != nil {
					errs <- err
					return
				}
				// Concurrent state reads must also be race-free.
				_ = ar.Incumbent()
				_ = ar.Window()
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := ar.Window(); got != collectors*windowsEach {
		t.Errorf("Window() = %d, want %d (every window consumed exactly once)", got, collectors*windowsEach)
	}
	if ar.Incumbent() == nil {
		t.Error("incumbent lost during concurrent observation")
	}
}

// TestFleetConcurrentObserve hammers the session handle itself: Observe
// from many collectors racing Plan/Events/Drift readers.
func TestFleetConcurrentObserve(t *testing.T) {
	wls, machines := watchFleet(6, 12)
	opt := DefaultOptions()
	opt.SkipDirect = true
	resolve := DefaultResolveOptions()
	resolve.SkipDirect = true
	f, err := NewFleet(FleetSpec{Workloads: wls, Machines: machines},
		WithSolveOptions(opt), WithResolveOptions(resolve))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Consolidate(context.Background()); err != nil {
		t.Fatal(err)
	}

	const collectors = 6
	const windowsEach = 4
	var wg sync.WaitGroup
	errs := make(chan error, collectors*windowsEach)
	for c := 0; c < collectors; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < windowsEach; i++ {
				scale := 1.002
				if (c+i)%4 == 0 {
					scale = 1.12
				}
				if _, err := f.Observe(context.Background(), scaleWorkloads(wls, scale)); err != nil {
					errs <- err
					return
				}
				_ = f.Plan()
				_ = f.Events()
				_ = f.Drift()
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := f.Window(); got != collectors*windowsEach {
		t.Errorf("Window() = %d, want %d", got, collectors*windowsEach)
	}
	if st := f.Drift(); st.Triggers != len(f.Events()) {
		t.Errorf("drift status triggers %d != event log %d", st.Triggers, len(f.Events()))
	}
}
