// Benchmarks for event-driven re-consolidation on the drifted 197-server
// ALL fleet: trigger quality (precision/recall of the drift detector over
// quiet and drifted observation windows) and end-to-end cost (objective
// evaluations spent by the watch loop versus re-solving on a fixed
// cadence). `make bench-drift` runs these; the metrics land in the
// BENCH_sweeps.json trajectory artifact via `make bench-json`.
package kairos

import (
	"context"
	"testing"

	"kairos/internal/core"
	"kairos/internal/fleet"
)

// BenchmarkDriftWatch plays a monitoring stream at the watch loop: five
// quiet windows (≤0.4% measurement noise around the solved-against
// profiles) followed by three windows at a persistent 5% drift. Tracked
// metrics:
//
//	trigger-precision  triggers landing on drifted windows / all triggers
//	trigger-recall     1 if the drift episode triggered within one window
//	watch-fevals       objective evaluations spent by the watch loop's
//	                   triggered re-solves across all 8 windows
//	cadence-fevals     evaluations a PR 3 fixed-cadence warm re-solve
//	                   (one per window, same options) spends on the same
//	                   stream — the cost the trigger avoids
//	migrated-frac      units migrated by the first triggered re-solve
//	objective-recovered stale-minus-resolved objective on the trigger
func BenchmarkDriftWatch(b *testing.B) {
	base := fleetProblem(fleet.All(), nil)
	opt := core.DefaultSolveOptions()
	opt.SkipDirect = true
	prev, err := core.Solve(context.Background(), base, opt)
	if err != nil {
		b.Fatal(err)
	}
	inc := core.IncumbentFromSolution(base, prev)

	const quietWindows = 5
	windows := make([][]Workload, 0, quietWindows+3)
	for i := 0; i < quietWindows; i++ {
		windows = append(windows, driftFleet(base.Workloads, 0.004, int64(100+i)))
	}
	drifted := driftFleet(base.Workloads, 0.05, 7)
	for i := 0; i < 3; i++ {
		windows = append(windows, drifted)
	}

	wopt := DefaultWatchOptions()
	wopt.Resolve.SkipDirect = true

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ar, err := NewAutoReconsolidator(inc, base.Workloads, base.Machines, nil, wopt)
		if err != nil {
			b.Fatal(err)
		}
		var triggers, onDrifted, watchFevals int
		var firstEvent *ReconsolidationEvent
		recall := 0.0
		for w, win := range windows {
			ev, err := ar.Observe(context.Background(), win)
			if err != nil {
				b.Fatal(err)
			}
			if ev == nil {
				continue
			}
			triggers++
			watchFevals += ev.Plan.Fevals
			if w >= quietWindows {
				onDrifted++
			}
			if w == quietWindows { // fired within one window of the episode
				recall = 1
			}
			if firstEvent == nil {
				firstEvent = ev
			}
		}
		precision := 1.0
		if triggers > 0 {
			precision = float64(onDrifted) / float64(triggers)
		}
		b.ReportMetric(precision, "trigger-precision")
		b.ReportMetric(recall, "trigger-recall")
		b.ReportMetric(float64(watchFevals), "watch-fevals")
		if firstEvent != nil {
			b.ReportMetric(float64(firstEvent.Plan.Migrated)/float64(len(firstEvent.Plan.Assign)), "migrated-frac")
			b.ReportMetric(firstEvent.ObjectiveDelta, "objective-recovered")
		}

		// The fixed-cadence baseline: a warm re-solve on every window,
		// whatever the drift — PR 3's loop. Same resolve options, so the
		// difference is purely what the trigger avoids.
		cadenceFevals := 0
		cadenceInc := inc
		for _, win := range windows {
			p := &core.Problem{Workloads: win, Machines: base.Machines}
			sol, err := core.Resolve(context.Background(), p, cadenceInc, wopt.Resolve)
			if err != nil {
				b.Fatal(err)
			}
			cadenceFevals += sol.Fevals
			cadenceInc = core.IncumbentFromSolution(p, sol)
		}
		b.ReportMetric(float64(cadenceFevals), "cadence-fevals")
	}
}
